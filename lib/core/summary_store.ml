type probe = Hit | Stale | Absent

type stats = {
  mutable ast_hits : int;
  mutable ast_misses : int;
  mutable fn_hits : int;
  mutable fn_stale : int;
  mutable fn_absent : int;
  mutable roots_replayed : int;
  mutable roots_recomputed : int;
}

type t = {
  dir : string;
  persist_ : bool;
  ext_keys : Fingerprint.t array;
  st : stats;
}

(* Bump on any change to the entry encodings below: every stored entry
   becomes unreachable at once instead of being misdecoded. *)
let store_version = "sumstore-2"

let create ~dir ?(persist = true) ~ext_keys () =
  {
    dir;
    persist_ = persist;
    ext_keys = Array.of_list ext_keys;
    st =
      {
        ast_hits = 0;
        ast_misses = 0;
        fn_hits = 0;
        fn_stale = 0;
        fn_absent = 0;
        roots_replayed = 0;
        roots_recomputed = 0;
      };
  }

let ext_keys_of ~options_digest ~sources =
  let rec go prefix = function
    | [] -> []
    | src :: rest ->
        let prefix = prefix @ [ Fingerprint.of_string src ] in
        Fingerprint.combine (Fingerprint.of_string ~salt:store_version options_digest :: prefix)
        :: go prefix rest
  in
  go [] sources

let ext_key t i = t.ext_keys.(i)
let persist t = t.persist_
let stats t = t.st

let pp_stats ppf t =
  Format.fprintf ppf
    "cache: ast %d hit / %d miss; summaries %d hit / %d stale / %d absent; roots %d replayed / %d recomputed"
    t.st.ast_hits t.st.ast_misses t.st.fn_hits t.st.fn_stale t.st.fn_absent
    t.st.roots_replayed t.st.roots_recomputed

(* ------------------------------------------------------------------ *)
(* Files                                                               *)
(* ------------------------------------------------------------------ *)

let mkdir_p dir =
  let rec go d =
    if not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Sys.mkdir d 0o755 with Sys_error _ when Sys.file_exists d -> ()
    end
  in
  go dir

let entry_path t ~kind ~ext ~name =
  Filename.concat
    (Filename.concat t.dir kind)
    (Fingerprint.combine [ ext; Fingerprint.of_string name ] ^ ".sexp")

let read_entry path =
  if not (Sys.file_exists path) then None
  else
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let src = really_input_string ic n in
      close_in ic;
      Some (Sexp.of_string src)
    with Sexp.Parse_error _ | Sys_error _ -> None

let write_entry t path sx =
  if t.persist_ then begin
    mkdir_p (Filename.dirname path);
    let tmp = Filename.temp_file ~temp_dir:(Filename.dirname path) "entry" ".tmp" in
    let oc = open_out_bin tmp in
    output_string oc (Sexp.to_string sx);
    output_char oc '\n';
    close_out oc;
    Sys.rename tmp path
  end

(* ------------------------------------------------------------------ *)
(* Function-summary entries                                            *)
(* ------------------------------------------------------------------ *)

(* (fn <name> <closure> (rets k...) ((<bs> <sfx>) ...)) *)

let fn_to_sexp ~fname ~closure ~bs ~sfx ~rets =
  Sexp.list
    [
      Sexp.atom "fn";
      Sexp.atom fname;
      Sexp.atom closure;
      Sexp.list (List.map Sexp.atom rets);
      Sexp.list
        (Array.to_list
           (Array.mapi
              (fun i b -> Sexp.list [ Summary.to_sexp b; Summary.to_sexp sfx.(i) ])
              bs));
    ]

let fn_header = function
  | Sexp.List (Sexp.Atom "fn" :: Sexp.Atom fname :: Sexp.Atom closure :: _) ->
      Some (fname, closure)
  | _ -> None

let probe_fn t ~ext ~fname ~closure =
  let path = entry_path t ~kind:"sum" ~ext ~name:fname in
  let r =
    match Option.bind (read_entry path) fn_header with
    | Some (name, stored) when String.equal name fname ->
        if String.equal stored closure then Hit else Stale
    | Some _ | None -> Absent
  in
  (match r with
  | Hit -> t.st.fn_hits <- t.st.fn_hits + 1
  | Stale -> t.st.fn_stale <- t.st.fn_stale + 1
  | Absent -> t.st.fn_absent <- t.st.fn_absent + 1);
  r

let store_fn t ~ext ~fname ~closure ~bs ~sfx ~rets =
  write_entry t
    (entry_path t ~kind:"sum" ~ext ~name:fname)
    (fn_to_sexp ~fname ~closure ~bs ~sfx ~rets)

let load_fn t ~ext ~fname ~closure =
  match read_entry (entry_path t ~kind:"sum" ~ext ~name:fname) with
  | Some
      (Sexp.List
        [ Sexp.Atom "fn"; Sexp.Atom name; Sexp.Atom stored; Sexp.List rets;
          Sexp.List blocks ])
    when String.equal name fname && String.equal stored closure -> (
      try
        let pairs =
          List.map
            (function
              | Sexp.List [ b; s ] -> (Summary.of_sexp b, Summary.of_sexp s)
              | _ -> raise (Sexp.Decode_error "bad block pair"))
            blocks
        in
        let rets =
          List.map
            (function
              | Sexp.Atom k -> k
              | _ -> raise (Sexp.Decode_error "bad ret key"))
            rets
        in
        Some
          ( Array.of_list (List.map fst pairs),
            Array.of_list (List.map snd pairs),
            rets )
      (* a corrupt entry is a miss, never an error: numeric atoms decode
         with int_of_string & co., which raise Failure/Invalid_argument *)
      with Sexp.Decode_error _ | Failure _ | Invalid_argument _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Root replay entries                                                 *)
(* ------------------------------------------------------------------ *)

type root_entry = {
  r_root : string;
  r_closure : Fingerprint.t;
  r_reports : Report.t list;
  r_counters : (string * int * int) list;
  r_annots : (Srcloc.t * string * string * int * string list) list;
  r_traversed : string list;
  r_stats : int list;
}

let counter_to_sexp (rule, e, c) =
  Sexp.list
    [ Sexp.atom rule; Sexp.atom (string_of_int e); Sexp.atom (string_of_int c) ]

let counter_of_sexp = function
  | Sexp.List [ Sexp.Atom rule; Sexp.Atom e; Sexp.Atom c ] ->
      (rule, int_of_string e, int_of_string c)
  | _ -> raise (Sexp.Decode_error "bad counter")

let annot_to_sexp ((loc : Srcloc.t), printed, ctx, occ, tags) =
  Sexp.list
    [
      Sexp.atom loc.file;
      Sexp.atom (string_of_int loc.line);
      Sexp.atom (string_of_int loc.col);
      Sexp.atom printed;
      Sexp.atom ctx;
      Sexp.atom (string_of_int occ);
      Sexp.list (List.map Sexp.atom tags);
    ]

let annot_of_sexp = function
  | Sexp.List
      [ Sexp.Atom file; Sexp.Atom line; Sexp.Atom col; Sexp.Atom printed;
        Sexp.Atom ctx; Sexp.Atom occ; Sexp.List tags ] ->
      ( Srcloc.make ~file ~line:(int_of_string line) ~col:(int_of_string col),
        printed,
        ctx,
        int_of_string occ,
        List.map
          (function
            | Sexp.Atom tag -> tag
            | _ -> raise (Sexp.Decode_error "bad tag"))
          tags )
  | _ -> raise (Sexp.Decode_error "bad annot")

let atoms_of = function
  | Sexp.List items ->
      List.map
        (function
          | Sexp.Atom a -> a
          | _ -> raise (Sexp.Decode_error "bad atom list"))
        items
  | _ -> raise (Sexp.Decode_error "bad atom list")

let root_to_sexp e =
  Sexp.list
    [
      Sexp.atom "root";
      Sexp.atom e.r_root;
      Sexp.atom e.r_closure;
      Sexp.list (List.map Report.to_sexp e.r_reports);
      Sexp.list (List.map counter_to_sexp e.r_counters);
      Sexp.list (List.map annot_to_sexp e.r_annots);
      Sexp.list (List.map Sexp.atom e.r_traversed);
      Sexp.list (List.map (fun i -> Sexp.atom (string_of_int i)) e.r_stats);
    ]

let root_of_sexp = function
  | Sexp.List
      [ Sexp.Atom "root"; Sexp.Atom r_root; Sexp.Atom r_closure;
        Sexp.List reports; Sexp.List counters; Sexp.List annots; traversed; stats ]
    ->
      {
        r_root;
        r_closure;
        r_reports = List.map Report.of_sexp reports;
        r_counters = List.map counter_of_sexp counters;
        r_annots = List.map annot_of_sexp annots;
        r_traversed = atoms_of traversed;
        r_stats = List.map int_of_string (atoms_of stats);
      }
  | other -> raise (Sexp.Decode_error ("bad root entry " ^ Sexp.to_string other))

let load_root t ~ext ~root ~closure =
  let path = entry_path t ~kind:"root" ~ext ~name:root in
  let r =
    match read_entry path with
    | None -> None
    | Some sx -> (
        (* a corrupt entry is a miss, never an error: numeric atoms decode
           with int_of_string & co., which raise Failure/Invalid_argument *)
        match
          try Some (root_of_sexp sx)
          with Sexp.Decode_error _ | Failure _ | Invalid_argument _ -> None
        with
        | Some e
          when String.equal e.r_root root && String.equal e.r_closure closure ->
            Some e
        | Some _ | None -> None)
  in
  (match r with
  | Some _ -> t.st.roots_replayed <- t.st.roots_replayed + 1
  | None -> t.st.roots_recomputed <- t.st.roots_recomputed + 1);
  r

let store_root t ~ext e =
  write_entry t (entry_path t ~kind:"root" ~ext ~name:e.r_root) (root_to_sexp e)
