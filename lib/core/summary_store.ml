type stats = {
  mutable ast_hits : int;
  mutable ast_misses : int;
  mutable fn_hits : int;
  mutable fn_stale : int;
  mutable fn_absent : int;
  mutable roots_replayed : int;
  mutable roots_recomputed : int;
  mutable fns_recomputed : int;
  mutable sums_unchanged : int;
  mutable roots_salvaged : int;
}

type fn_entry = {
  f_name : string;
  f_key : Fingerprint.t;
  f_content : Fingerprint.t;
  f_bs : Summary.t array;
  f_sfx : Summary.t array;
  f_rets : string list;
}

type root_entry = {
  r_root : string;
  r_key : Fingerprint.t;
  r_reports : Report.t list;
  r_counters : (string * int * int) list;
  r_annots : (Srcloc.t * string * string * int * string list) list;
  r_traversed : string list;
  r_stats : int list;
}

(* In-memory overlay for long-lived processes (the serve daemon): decoded
   entries keyed by their on-disk path, plus a negative cache of paths
   known to be absent or unreadable. Warm probes hit the tables and skip
   both the disk read and the binary decode; writes land in the tables
   first and flow to disk only when [persist_] is also set. Decoded
   entries are safe to share across runs: the engine seeds callers by
   merging {e out of} a hit's summaries ([merge_fsum_into] only reads the
   source side) and replays roots without mutating the entry. *)
type memory = {
  mem_fn : (string, fn_entry) Hashtbl.t;
  mem_root : (string, root_entry) Hashtbl.t;
  mem_absent : (string, unit) Hashtbl.t;
}

and t = {
  dir : string;
  persist_ : bool;
  mem : memory option;
  ext_keys : Fingerprint.t array;
  st : stats;
}

(* Bump on any change to the entry encodings below: the version is salted
   into every extension key, so every stored entry becomes unreachable at
   once (orphaned, never misdecoded) and a cold recompute rebuilds the
   store in the new format alongside. sumstore-3: binary entries, two-level
   keying (fn entries keyed by body+callee-content, with a summary content
   hash for early cutoff). *)
let store_version = "sumstore-3"

let fn_magic = "XGFN1\n"
let root_magic = "XGRT1\n"

let mkdir_p dir =
  let rec go d =
    if not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Sys.mkdir d 0o755 with Sys_error _ when Sys.file_exists d -> ()
    end
  in
  go dir

let version_path dir = Filename.concat dir "VERSION"

let read_version ~dir =
  let path = version_path dir in
  if not (Sys.file_exists path) then None
  else
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Some (String.trim (input_line ic)))
    with Sys_error _ | End_of_file -> None

let write_version dir =
  if read_version ~dir <> Some store_version then begin
    mkdir_p dir;
    let tmp = Filename.temp_file ~temp_dir:dir "version" ".tmp" in
    let oc = open_out_bin tmp in
    output_string oc store_version;
    output_char oc '\n';
    close_out oc;
    Sys.rename tmp (version_path dir)
  end

let create ~dir ?(persist = true) ?(memory = false) ~ext_keys () =
  (* Stamp the store version: entries of an older version are orphaned by
     the key salt below, and the stamp lets `cache stats` say so. *)
  if persist then (try write_version dir with Sys_error _ -> ());
  {
    dir;
    persist_ = persist;
    mem =
      (if memory then
         Some
           {
             mem_fn = Hashtbl.create 1024;
             mem_root = Hashtbl.create 1024;
             mem_absent = Hashtbl.create 1024;
           }
       else None);
    ext_keys = Array.of_list ext_keys;
    st =
      {
        ast_hits = 0;
        ast_misses = 0;
        fn_hits = 0;
        fn_stale = 0;
        fn_absent = 0;
        roots_replayed = 0;
        roots_recomputed = 0;
        fns_recomputed = 0;
        sums_unchanged = 0;
        roots_salvaged = 0;
      };
  }

let ext_keys_of ~options_digest ~sources =
  let rec go prefix = function
    | [] -> []
    | src :: rest ->
        let prefix = prefix @ [ Fingerprint.of_string src ] in
        Fingerprint.combine (Fingerprint.of_string ~salt:store_version options_digest :: prefix)
        :: go prefix rest
  in
  go [] sources

let ext_key t i = t.ext_keys.(i)

(* "Accepts writes": a memory-backed store captures results even when it
   never writes them to disk, so the engine must still hand entries over. *)
let persist t = t.persist_ || Option.is_some t.mem
let disk_persist t = t.persist_
let in_memory t = Option.is_some t.mem

let mem_entries t =
  match t.mem with
  | None -> 0
  | Some m -> Hashtbl.length m.mem_fn + Hashtbl.length m.mem_root

let stats t = t.st

let reset_stats t =
  let s = t.st in
  s.ast_hits <- 0;
  s.ast_misses <- 0;
  s.fn_hits <- 0;
  s.fn_stale <- 0;
  s.fn_absent <- 0;
  s.roots_replayed <- 0;
  s.roots_recomputed <- 0;
  s.fns_recomputed <- 0;
  s.sums_unchanged <- 0;
  s.roots_salvaged <- 0

let pp_stats ppf t =
  Format.fprintf ppf
    "cache: ast %d hit / %d miss; summaries %d hit / %d stale / %d absent; roots %d replayed / %d recomputed; cutoff %d fns recomputed / %d summaries unchanged / %d roots salvaged"
    t.st.ast_hits t.st.ast_misses t.st.fn_hits t.st.fn_stale t.st.fn_absent
    t.st.roots_replayed t.st.roots_recomputed t.st.fns_recomputed
    t.st.sums_unchanged t.st.roots_salvaged

(* ------------------------------------------------------------------ *)
(* Files                                                               *)
(* ------------------------------------------------------------------ *)

let entry_path t ~kind ~ext ~name =
  Filename.concat
    (Filename.concat t.dir kind)
    (Fingerprint.combine [ ext; Fingerprint.of_string name ] ^ ".bin")

let read_entry path =
  if not (Sys.file_exists path) then None
  else try Some (Wire.read_file path) with Sys_error _ -> None

let write_entry t path data =
  if t.persist_ then begin
    mkdir_p (Filename.dirname path);
    let tmp = Filename.temp_file ~temp_dir:(Filename.dirname path) "entry" ".tmp" in
    let oc = open_out_bin tmp in
    output_string oc data;
    close_out oc;
    Sys.rename tmp path
  end

(* ------------------------------------------------------------------ *)
(* Function-summary entries                                            *)
(* ------------------------------------------------------------------ *)

type probe = Hit of fn_entry | Stale of Fingerprint.t | Absent

let fn_to_bin e =
  let b = Wire.writer ~magic:fn_magic () in
  Wire.string b e.f_name;
  Wire.string b e.f_key;
  Wire.string b e.f_content;
  Wire.list b Wire.string e.f_rets;
  Wire.int b (Array.length e.f_bs);
  Array.iter (Summary.to_bin b) e.f_bs;
  Array.iter (Summary.to_bin b) e.f_sfx;
  Wire.contents b

let fn_of_bin src =
  let r = Wire.reader ~magic:fn_magic src in
  let f_name = Wire.rstring r in
  let f_key = Wire.rstring r in
  let f_content = Wire.rstring r in
  let f_rets = Wire.rlist r Wire.rstring in
  let n = Wire.rint r in
  if n < 0 then raise (Wire.Corrupt "bad block count");
  let f_bs = Array.init n (fun _ -> Summary.of_bin r) in
  let f_sfx = Array.init n (fun _ -> Summary.of_bin r) in
  { f_name; f_key; f_content; f_bs; f_sfx; f_rets }

let classify_fn ~fname ~key e =
  if String.equal e.f_name fname then
    if String.equal e.f_key key then Hit e else Stale e.f_content
  else Absent

let probe_fn_disk ~fname path =
  match read_entry path with
  | None -> None
  | Some src -> (
      (* a corrupt or truncated entry is a miss, never an error: the
         decoder raises Wire.Corrupt on malformed frames and
         Failure/Invalid_argument on nonsense payloads *)
      match fn_of_bin src with
      | e when String.equal e.f_name fname -> Some e
      | _ -> None
      | exception (Wire.Corrupt _ | Failure _ | Invalid_argument _) -> None)

let probe_fn t ~ext ~fname ~key =
  let path = entry_path t ~kind:"sum" ~ext ~name:fname in
  let r =
    match t.mem with
    | None -> (
        match probe_fn_disk ~fname path with
        | Some e -> classify_fn ~fname ~key e
        | None -> Absent)
    | Some m -> (
        match Hashtbl.find_opt m.mem_fn path with
        | Some e -> classify_fn ~fname ~key e
        | None ->
            if Hashtbl.mem m.mem_absent path then Absent
            else (
              match probe_fn_disk ~fname path with
              | Some e ->
                  Hashtbl.replace m.mem_fn path e;
                  classify_fn ~fname ~key e
              | None ->
                  Hashtbl.replace m.mem_absent path ();
                  Absent))
  in
  (match r with
  | Hit _ -> t.st.fn_hits <- t.st.fn_hits + 1
  | Stale _ -> t.st.fn_stale <- t.st.fn_stale + 1
  | Absent -> t.st.fn_absent <- t.st.fn_absent + 1);
  r

let store_fn t ~ext ~fname ~key ~content ~bs ~sfx ~rets =
  let e =
    { f_name = fname; f_key = key; f_content = content; f_bs = bs;
      f_sfx = sfx; f_rets = rets }
  in
  let path = entry_path t ~kind:"sum" ~ext ~name:fname in
  (match t.mem with
  | Some m ->
      Hashtbl.remove m.mem_absent path;
      Hashtbl.replace m.mem_fn path e
  | None -> ());
  write_entry t path (fn_to_bin e)

(* ------------------------------------------------------------------ *)
(* Root replay entries                                                 *)
(* ------------------------------------------------------------------ *)

let counter_to_bin b (rule, e, c) =
  Wire.string b rule;
  Wire.int b e;
  Wire.int b c

let counter_of_bin r =
  let rule = Wire.rstring r in
  let e = Wire.rint r in
  let c = Wire.rint r in
  (rule, e, c)

let annot_to_bin b ((loc : Srcloc.t), printed, ctx, occ, tags) =
  Wire.string b loc.file;
  Wire.int b loc.line;
  Wire.int b loc.col;
  Wire.string b printed;
  Wire.string b ctx;
  Wire.int b occ;
  Wire.list b Wire.string tags

let annot_of_bin r =
  let file = Wire.rstring r in
  let line = Wire.rint r in
  let col = Wire.rint r in
  let printed = Wire.rstring r in
  let ctx = Wire.rstring r in
  let occ = Wire.rint r in
  let tags = Wire.rlist r Wire.rstring in
  (Srcloc.make ~file ~line ~col, printed, ctx, occ, tags)

let root_to_bin e =
  let b = Wire.writer ~magic:root_magic () in
  Wire.string b e.r_root;
  Wire.string b e.r_key;
  Wire.list b Report.to_bin e.r_reports;
  Wire.list b counter_to_bin e.r_counters;
  Wire.list b annot_to_bin e.r_annots;
  Wire.list b Wire.string e.r_traversed;
  Wire.list b Wire.int e.r_stats;
  Wire.contents b

let root_of_bin src =
  let r = Wire.reader ~magic:root_magic src in
  let r_root = Wire.rstring r in
  let r_key = Wire.rstring r in
  let r_reports = Wire.rlist r Report.of_bin in
  let r_counters = Wire.rlist r counter_of_bin in
  let r_annots = Wire.rlist r annot_of_bin in
  let r_traversed = Wire.rlist r Wire.rstring in
  let r_stats = Wire.rlist r Wire.rint in
  { r_root; r_key; r_reports; r_counters; r_annots; r_traversed; r_stats }

let load_root_disk ~root path =
  match read_entry path with
  | None -> None
  | Some src -> (
      match
        try Some (root_of_bin src)
        with Wire.Corrupt _ | Failure _ | Invalid_argument _ -> None
      with
      | Some e when String.equal e.r_root root -> Some e
      | Some _ | None -> None)

let load_root t ~ext ~root ~key =
  let path = entry_path t ~kind:"root" ~ext ~name:root in
  let validate = function
    | Some e when String.equal e.r_root root && String.equal e.r_key key ->
        Some e
    | Some _ | None -> None
  in
  let r =
    match t.mem with
    | None -> validate (load_root_disk ~root path)
    | Some m -> (
        match Hashtbl.find_opt m.mem_root path with
        | Some e -> validate (Some e)
        | None ->
            if Hashtbl.mem m.mem_absent path then None
            else (
              match load_root_disk ~root path with
              | Some e ->
                  Hashtbl.replace m.mem_root path e;
                  validate (Some e)
              | None ->
                  Hashtbl.replace m.mem_absent path ();
                  None))
  in
  (match r with
  | Some _ -> t.st.roots_replayed <- t.st.roots_replayed + 1
  | None -> t.st.roots_recomputed <- t.st.roots_recomputed + 1);
  r

let store_root t ~ext e =
  let path = entry_path t ~kind:"root" ~ext ~name:e.r_root in
  (match t.mem with
  | Some m ->
      Hashtbl.remove m.mem_absent path;
      Hashtbl.replace m.mem_root path e
  | None -> ());
  write_entry t path (root_to_bin e)

(* ------------------------------------------------------------------ *)
(* Last-run counters                                                   *)
(* ------------------------------------------------------------------ *)

(* Plain "name value" lines so `cache stats` can show the previous run's
   hit/stale/miss mix without re-running anything. *)

let last_run_fields st =
  [
    ("ast_hits", st.ast_hits);
    ("ast_misses", st.ast_misses);
    ("fn_hits", st.fn_hits);
    ("fn_stale", st.fn_stale);
    ("fn_absent", st.fn_absent);
    ("roots_replayed", st.roots_replayed);
    ("roots_recomputed", st.roots_recomputed);
    ("fns_recomputed", st.fns_recomputed);
    ("sums_unchanged", st.sums_unchanged);
    ("roots_salvaged", st.roots_salvaged);
  ]

let last_run_path dir = Filename.concat dir "last-run"

let save_last_run t =
  if t.persist_ then
    try
      mkdir_p t.dir;
      let tmp = Filename.temp_file ~temp_dir:t.dir "lastrun" ".tmp" in
      let oc = open_out_bin tmp in
      List.iter
        (fun (k, v) -> Printf.fprintf oc "%s %d\n" k v)
        (last_run_fields t.st);
      close_out oc;
      Sys.rename tmp (last_run_path t.dir)
    with Sys_error _ -> ()

let load_last_run ~dir =
  let path = last_run_path dir in
  if not (Sys.file_exists path) then None
  else
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let acc = ref [] in
          (try
             while true do
               match String.split_on_char ' ' (input_line ic) with
               | [ k; v ] -> acc := (k, int_of_string v) :: !acc
               | _ -> ()
             done
           with End_of_file -> ());
          Some (List.rev !acc))
    with Sys_error _ | Failure _ -> None

(* ------------------------------------------------------------------ *)
(* Disk inspection and dumping (the `cache stats` / `cache dump` CLI)  *)
(* ------------------------------------------------------------------ *)

type disk_kind = { dk_files : int; dk_bytes : int }
type disk = { d_version : string option; d_ast : disk_kind; d_sum : disk_kind; d_root : disk_kind }

let scan_kind dir kind =
  let d = Filename.concat dir kind in
  if not (Sys.file_exists d) then { dk_files = 0; dk_bytes = 0 }
  else
    try
      Array.fold_left
        (fun acc f ->
          let path = Filename.concat d f in
          match (Unix.stat path).Unix.st_kind with
          | Unix.S_REG ->
              {
                dk_files = acc.dk_files + 1;
                dk_bytes = acc.dk_bytes + (Unix.stat path).Unix.st_size;
              }
          | _ -> acc
          | exception Unix.Unix_error _ -> acc)
        { dk_files = 0; dk_bytes = 0 }
        (Sys.readdir d)
    with Sys_error _ -> { dk_files = 0; dk_bytes = 0 }

let disk_stats ~dir =
  {
    d_version = read_version ~dir;
    d_ast = scan_kind dir "ast";
    d_sum = scan_kind dir "sum";
    d_root = scan_kind dir "root";
  }

(* Sexp renderings of the binary entries, for `cache dump` — debugging
   reads sexps, the hot path never does. *)

let fn_to_sexp (e : fn_entry) =
  Sexp.list
    [
      Sexp.atom "fn";
      Sexp.atom e.f_name;
      Sexp.atom e.f_key;
      Sexp.atom e.f_content;
      Sexp.list (List.map Sexp.atom e.f_rets);
      Sexp.list
        (Array.to_list
           (Array.mapi
              (fun i b -> Sexp.list [ Summary.to_sexp b; Summary.to_sexp e.f_sfx.(i) ])
              e.f_bs));
    ]

let root_to_sexp e =
  let annot_to_sexp ((loc : Srcloc.t), printed, ctx, occ, tags) =
    Sexp.list
      [
        Sexp.atom loc.file;
        Sexp.atom (string_of_int loc.line);
        Sexp.atom (string_of_int loc.col);
        Sexp.atom printed;
        Sexp.atom ctx;
        Sexp.atom (string_of_int occ);
        Sexp.list (List.map Sexp.atom tags);
      ]
  in
  Sexp.list
    [
      Sexp.atom "root";
      Sexp.atom e.r_root;
      Sexp.atom e.r_key;
      Sexp.list (List.map Report.to_sexp e.r_reports);
      Sexp.list
        (List.map
           (fun (rule, ex, c) ->
             Sexp.list
               [ Sexp.atom rule; Sexp.atom (string_of_int ex);
                 Sexp.atom (string_of_int c) ])
           e.r_counters);
      Sexp.list (List.map annot_to_sexp e.r_annots);
      Sexp.list (List.map Sexp.atom e.r_traversed);
      Sexp.list (List.map (fun i -> Sexp.atom (string_of_int i)) e.r_stats);
    ]

let dump_entry path =
  match Wire.read_file path with
  | exception Sys_error e -> Error e
  | src -> (
      let starts m =
        String.length src >= String.length m
        && String.equal (String.sub src 0 (String.length m)) m
      in
      try
        if starts fn_magic then Ok (fn_to_sexp (fn_of_bin src))
        else if starts root_magic then Ok (root_to_sexp (root_of_bin src))
        else Error "unrecognised entry magic"
      with
      | Wire.Corrupt m -> Error ("corrupt entry: " ^ m)
      | Failure m -> Error ("corrupt entry: " ^ m)
      | Invalid_argument m -> Error ("corrupt entry: " ^ m))
