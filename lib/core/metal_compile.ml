exception Compile_error of Srcloc.t * string

(* ------------------------------------------------------------------ *)
(* Action interpretation                                               *)
(* ------------------------------------------------------------------ *)

let value_to_string = function
  | Callout.Vstr s -> s
  | Callout.Vint n -> Int64.to_string n
  | Callout.Vbool b -> string_of_bool b
  | Callout.Vast e -> Cprint.expr_to_string e
  | Callout.Vargs es -> String.concat ", " (List.map Cprint.expr_to_string es)
  | Callout.Vunit -> ""

(* Substitute "%s"/"%d" placeholders left to right. *)
let format_message fmt values =
  let buf = Buffer.create (String.length fmt + 16) in
  let values = ref values in
  let n = String.length fmt in
  let i = ref 0 in
  while !i < n do
    if
      !i + 1 < n
      && Char.equal fmt.[!i] '%'
      && (Char.equal fmt.[!i + 1] 's' || Char.equal fmt.[!i + 1] 'd')
    then begin
      (match !values with
      | v :: rest ->
          Buffer.add_string buf (value_to_string v);
          values := rest
      | [] -> Buffer.add_string buf "?");
      i := !i + 2
    end
    else begin
      Buffer.add_char buf fmt.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let int_of_value = function
  | Callout.Vint n -> Int64.to_int n
  | Callout.Vbool true -> 1
  | _ -> 0

(* Per-action-block mutable state: annotations and rule accumulate and
   apply to subsequent err() calls in the same block. *)
let run_actions (stmts : Metal_ast.action_stmt list) : Sm.action =
 fun (actx : Sm.actx) ->
  let cctx =
    { Callout.typing = actx.a_typing; node = actx.a_node; annots = Hashtbl.create 1 }
  in
  let eval e = Pattern.eval_callout cctx actx.a_bindings e in
  let annotations = ref [] in
  let rule = ref None in
  let emit fmt_expr rest_args =
    let fmt = value_to_string (eval fmt_expr) in
    let values = List.map eval rest_args in
    let msg = format_message fmt values in
    actx.a_report ~annotations:(List.rev !annotations) ?rule:!rule msg
  in
  List.iter
    (fun (stmt : Metal_ast.action_stmt) ->
      match (stmt.ac_name, stmt.ac_args) with
      | "err", fmt :: rest -> emit fmt rest
      | "annotate", [ tag ] -> annotations := value_to_string (eval tag) :: !annotations
      | "set_rule", [ r ] -> rule := Some (value_to_string (eval r))
      | "example", [ r ] -> actx.a_count `Example (value_to_string (eval r))
      | "counterexample", [ r ] ->
          actx.a_count `Counterexample (value_to_string (eval r))
      (* per-function counters: "Ranking code" (Section 9) scores each
         function by how often it obeys vs. violates the rule *)
      | "example_in_func", [] -> actx.a_count `Example actx.a_func
      | "counterexample_in_func", [] -> actx.a_count `Counterexample actx.a_func
      | "set_rule_to_func", [] -> rule := Some actx.a_func
      | "annotate_ast", [ hole; tag ] -> (
          match eval hole with
          | Callout.Vast e -> actx.a_annotate e (value_to_string (eval tag))
          | _ -> ())
      | "kill_path", [] -> actx.a_kill_path ()
      | "set_global", [ g ] ->
          (* Section 3.1: escapes "may also update the value of the global
             instance directly" *)
          actx.a_sm.Sm.gstate <- value_to_string (eval g)
      | "incr", [ field ] -> (
          match actx.a_inst with
          | Some i ->
              let f = value_to_string (eval field) in
              Sm.set_int i f (Sm.get_int i f + 1)
          | None -> ())
      | "decr", [ field ] -> (
          match actx.a_inst with
          | Some i ->
              let f = value_to_string (eval field) in
              Sm.set_int i f (Sm.get_int i f - 1)
          | None -> ())
      | "set", [ field; v ] -> (
          match actx.a_inst with
          | Some i -> Sm.set_int i (value_to_string (eval field)) (int_of_value (eval v))
          | None -> ())
      | "err_if_over", [ field; limit; fmt ] -> (
          match actx.a_inst with
          | Some i ->
              let f = value_to_string (eval field) in
              if Sm.get_int i f > int_of_value (eval limit) then emit fmt []
          | None -> ())
      | "err_if_under", [ field; limit; fmt ] -> (
          match actx.a_inst with
          | Some i ->
              let f = value_to_string (eval field) in
              if Sm.get_int i f < int_of_value (eval limit) then emit fmt []
          | None -> ())
      | name, args ->
          (* escape: any registered callout may be used as an action *)
          (match Callout.lookup name with
          | Some fn -> ignore (fn cctx (List.map eval args))
          | None ->
              raise
                (Compile_error
                   (stmt.ac_loc, Printf.sprintf "unknown action '%s'" name))))
    stmts

(* ------------------------------------------------------------------ *)
(* Destinations                                                        *)
(* ------------------------------------------------------------------ *)

let rec compile_dest (m : Metal_ast.t) (d : Metal_ast.dest) : Sm.dest =
  match d with
  | Metal_ast.Dnone -> Sm.Same
  | Metal_ast.Dglobal s -> Sm.To_global s
  | Metal_ast.Dvar (v, s) -> (
      (match Metal_ast.svar_of m with
      | Some sv when String.equal sv v -> ()
      | _ ->
          raise
            (Compile_error
               ( m.sm_loc,
                 Printf.sprintf "destination '%s.%s' does not name the state variable" v
                   s )));
      if String.equal s Sm.stop_value then Sm.To_stop else Sm.To_var s)
  | Metal_ast.Dbranch (t, f) -> Sm.On_branch (compile_dest m t, compile_dest m f)

(* ------------------------------------------------------------------ *)
(* Whole state machines                                                *)
(* ------------------------------------------------------------------ *)

let compile (m : Metal_ast.t) : Sm.t =
  let svar = Metal_ast.svar_of m in
  let holes = Metal_ast.holes_of m in
  let start_state =
    match m.sm_clauses with
    | { c_source = Metal_ast.Sglobal g; _ } :: _ -> g
    | _ -> "start"
  in
  let compile_rule source (r : Metal_ast.rule) : Sm.transition =
    let action =
      match r.r_actions with [] -> None | stmts -> Some (run_actions stmts)
    in
    {
      Sm.tr_source = source;
      tr_pattern = r.r_pattern;
      tr_dest = compile_dest m r.r_dest;
      tr_action = action;
    }
  in
  let transitions =
    List.concat_map
      (fun (c : Metal_ast.clause) ->
        let source =
          match c.c_source with
          | Metal_ast.Sglobal g -> Sm.Src_global g
          | Metal_ast.Svar (v, s) ->
              (match svar with
              | Some sv when String.equal sv v -> ()
              | _ ->
                  raise
                    (Compile_error
                       ( m.sm_loc,
                         Printf.sprintf "clause source '%s.%s' does not name the state variable"
                           v s )));
              Sm.Src_var s
        in
        List.map (compile_rule source) c.c_rules)
      m.sm_clauses
  in
  let has_opt o = List.mem o m.sm_options in
  Sm.make ~name:m.sm_name ~start:start_state ?svar ~holes
    ~auto_kill:(not (has_opt "no_auto_kill"))
    ~track_synonyms:(not (has_opt "no_synonyms"))
    ~byval_restore:(has_opt "byval_restore") transitions

let load ~file src = List.map compile (Metal_parse.parse ~file src)
let load_file path = List.map compile (Metal_parse.parse_file path)
