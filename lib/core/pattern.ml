type t =
  | Pexpr of Cast.expr
  | Pand of t * t
  | Por of t * t
  | Pcallout of Cast.expr
  | Pend_of_path
  | Pnever
  | Palways

type binding = Bnode of Cast.expr | Bargs of Cast.expr list
type bindings = (string * binding) list
type event = At_node of Cast.expr | At_end_of_path

let rec mentions_expr (e : Cast.expr) name =
  match e.enode with
  | Cast.Eident x -> String.equal x name
  | _ ->
      let children =
        match e.enode with
        | Cast.Eunary (_, e1)
        | Cast.Ecast (_, e1)
        | Cast.Esizeof_expr e1
        | Cast.Efield (e1, _)
        | Cast.Earrow (e1, _) ->
            [ e1 ]
        | Cast.Ebinary (_, l, r)
        | Cast.Eassign (_, l, r)
        | Cast.Eindex (l, r)
        | Cast.Ecomma (l, r) ->
            [ l; r ]
        | Cast.Econd (c, th, el) -> [ c; th; el ]
        | Cast.Ecall (f, args) -> f :: args
        | Cast.Einit_list es -> es
        | _ -> []
      in
      List.exists (fun c -> mentions_expr c name) children

let rec mentions_hole p name =
  match p with
  | Pexpr e | Pcallout e -> mentions_expr e name
  | Pand (a, b) | Por (a, b) -> mentions_hole a name || mentions_hole b name
  | Pend_of_path | Pnever | Palways -> false

let holes_of p env = List.filter (fun (n, _) -> mentions_hole p n) env

(* Event-kind capabilities, used by the dispatch compiler to drop
   transitions from the node / end-of-path candidate lists. Conservative
   in the callout direction: a callout's truth value is unknowable
   statically, so it can match either event kind. *)
let rec can_match_node = function
  | Pexpr _ | Pcallout _ | Palways -> true
  | Pend_of_path | Pnever -> false
  | Pand (a, b) -> can_match_node a && can_match_node b
  | Por (a, b) -> can_match_node a || can_match_node b

let rec can_match_end_of_path = function
  | Pend_of_path | Pcallout _ | Palways -> true
  | Pexpr _ | Pnever -> false
  | Pand (a, b) -> can_match_end_of_path a && can_match_end_of_path b
  | Por (a, b) -> can_match_end_of_path a || can_match_end_of_path b

let expr_of_fragment ~holes:_ text = Cparse.expr_of_string ~file:"<pattern>" text

(* ------------------------------------------------------------------ *)
(* Structural matching with holes                                      *)
(* ------------------------------------------------------------------ *)

let bind bindings name b =
  match List.assoc_opt name bindings with
  | Some existing -> (
      match (existing, b) with
      | Bnode a, Bnode b when Cast.equal_expr a b -> Some bindings
      | Bargs a, Bargs b
        when List.length a = List.length b && List.for_all2 Cast.equal_expr a b ->
          Some bindings
      | _ -> None)
  | None -> Some ((name, b) :: bindings)

(* Strip no-op wrappers (casts) on the subject side so that a cast pointer
   still matches a bare-pointer hole. Pattern-side nodes are taken
   literally. *)
let rec strip (e : Cast.expr) =
  match e.enode with Cast.Ecast (_, e1) -> strip e1 | _ -> e

let hole_of holes name = List.assoc_opt name holes

let rec match_expr ctx holes (pat : Cast.expr) (sub : Cast.expr) bindings :
    bindings option =
  let ( let* ) = Option.bind in
  match pat.enode with
  | Cast.Eident h when Option.is_some (hole_of holes h) -> (
      let ht = Option.get (hole_of holes h) in
      match ht with
      | Holes.Any_arguments ->
          (* an argument-list hole in expression position: no match *)
          None
      | Holes.Any_fn_call ->
          if Holes.matches ctx.Callout.typing ht sub then bind bindings h (Bnode sub)
          else None
      | _ ->
          let sub' = strip sub in
          if Holes.matches ctx.Callout.typing ht sub' then bind bindings h (Bnode sub')
          else None)
  | _ -> (
      match (pat.enode, sub.enode) with
      | Cast.Eint a, Cast.Eint b -> if Int64.equal a b then Some bindings else None
      | Cast.Efloat a, Cast.Efloat b -> if Float.equal a b then Some bindings else None
      | Cast.Echar a, Cast.Echar b -> if Char.equal a b then Some bindings else None
      | Cast.Estr a, Cast.Estr b -> if String.equal a b then Some bindings else None
      | Cast.Eident a, Cast.Eident b -> if String.equal a b then Some bindings else None
      | Cast.Eunary (ua, a), Cast.Eunary (ub, b) when ua = ub ->
          match_expr ctx holes a b bindings
      | Cast.Ebinary (oa, la, ra), Cast.Ebinary (ob, lb, rb) when oa = ob ->
          let* bindings = match_expr ctx holes la lb bindings in
          match_expr ctx holes ra rb bindings
      | Cast.Eassign (oa, la, ra), Cast.Eassign (ob, lb, rb) when oa = ob ->
          let* bindings = match_expr ctx holes la lb bindings in
          match_expr ctx holes ra rb bindings
      | Cast.Ecall (pf, pargs), Cast.Ecall (sf, sargs) -> (
          (* function position: an any_fn_call hole binds the callee *)
          let* bindings =
            match pf.enode with
            | Cast.Eident h when hole_of holes h = Some Holes.Any_fn_call ->
                bind bindings h (Bnode sf)
            | _ -> match_expr ctx holes pf sf bindings
          in
          match pargs with
          | [ { enode = Cast.Eident h; _ } ]
            when hole_of holes h = Some Holes.Any_arguments ->
              bind bindings h (Bargs sargs)
          | _ ->
              if List.length pargs <> List.length sargs then None
              else
                List.fold_left2
                  (fun acc p s ->
                    let* bindings = acc in
                    match_expr ctx holes p s bindings)
                  (Some bindings) pargs sargs)
      | Cast.Efield (a, fa), Cast.Efield (b, fb) when String.equal fa fb ->
          match_expr ctx holes a b bindings
      | Cast.Earrow (a, fa), Cast.Earrow (b, fb) when String.equal fa fb ->
          match_expr ctx holes a b bindings
      | Cast.Eindex (aa, ia), Cast.Eindex (ab, ib) ->
          let* bindings = match_expr ctx holes aa ab bindings in
          match_expr ctx holes ia ib bindings
      | Cast.Ecast (ta, a), Cast.Ecast (tb, b) when Ctyp.equal ta tb ->
          match_expr ctx holes a b bindings
      | Cast.Econd (ca, ta, fa), Cast.Econd (cb, tb, fb) ->
          let* bindings = match_expr ctx holes ca cb bindings in
          let* bindings = match_expr ctx holes ta tb bindings in
          match_expr ctx holes fa fb bindings
      | Cast.Ecomma (la, ra), Cast.Ecomma (lb, rb) ->
          let* bindings = match_expr ctx holes la lb bindings in
          match_expr ctx holes ra rb bindings
      | Cast.Esizeof_type ta, Cast.Esizeof_type tb ->
          if Ctyp.equal ta tb then Some bindings else None
      | Cast.Esizeof_expr a, Cast.Esizeof_expr b -> match_expr ctx holes a b bindings
      | _, _ -> None)

(* ------------------------------------------------------------------ *)
(* Callout evaluation                                                  *)
(* ------------------------------------------------------------------ *)

let rec eval_callout (ctx : Callout.ctx) (bindings : bindings) (e : Cast.expr) :
    Callout.value =
  match e.enode with
  | Cast.Eint n -> Callout.Vint n
  | Cast.Estr s -> Callout.Vstr s
  | Cast.Echar c -> Callout.Vint (Int64.of_int (Char.code c))
  | Cast.Eident "mc_stmt" -> (
      match ctx.node with Some n -> Callout.Vast n | None -> Callout.Vunit)
  | Cast.Eident x -> (
      match List.assoc_opt x bindings with
      | Some (Bnode n) -> Callout.Vast n
      | Some (Bargs args) -> Callout.Vargs args
      | None -> Callout.Vunit)
  | Cast.Eunary (Cast.Lognot, e1) ->
      Callout.Vbool (not (Callout.truthy (eval_callout ctx bindings e1)))
  | Cast.Ebinary (Cast.Land, a, b) ->
      Callout.Vbool
        (Callout.truthy (eval_callout ctx bindings a)
        && Callout.truthy (eval_callout ctx bindings b))
  | Cast.Ebinary (Cast.Lor, a, b) ->
      Callout.Vbool
        (Callout.truthy (eval_callout ctx bindings a)
        || Callout.truthy (eval_callout ctx bindings b))
  | Cast.Ebinary (Cast.Eq, a, b) -> Callout.Vbool (values_equal ctx bindings a b)
  | Cast.Ebinary (Cast.Ne, a, b) -> Callout.Vbool (not (values_equal ctx bindings a b))
  | Cast.Ecall ({ enode = Cast.Eident f; _ }, args) -> (
      match Callout.lookup f with
      | Some fn -> fn ctx (List.map (eval_callout ctx bindings) args)
      | None -> Callout.Vbool false)
  | _ -> Callout.Vbool false

and values_equal ctx bindings a b =
  match (eval_callout ctx bindings a, eval_callout ctx bindings b) with
  | Callout.Vint x, Callout.Vint y -> Int64.equal x y
  | Callout.Vstr x, Callout.Vstr y -> String.equal x y
  | Callout.Vbool x, Callout.Vbool y -> Bool.equal x y
  | Callout.Vast x, Callout.Vast y -> Cast.equal_expr x y
  | _, _ -> false

(* ------------------------------------------------------------------ *)
(* Top-level matching                                                  *)
(* ------------------------------------------------------------------ *)

let rec match_event ?(init = []) ~ctx ~holes p (ev : event) : bindings option =
  match_with ~ctx ~holes p ev init

and match_with ~ctx ~holes p ev bindings =
  match (p, ev) with
  | Pnever, _ -> None
  | Palways, _ -> Some bindings
  | Pend_of_path, At_end_of_path -> Some bindings
  | Pend_of_path, At_node _ -> None
  | Pexpr pat, At_node node -> match_expr ctx holes pat node bindings
  | Pexpr _, At_end_of_path -> None
  | Pcallout body, _ ->
      if Callout.truthy (eval_callout ctx bindings body) then Some bindings else None
  | Pand (a, b), ev -> (
      match match_with ~ctx ~holes a ev bindings with
      | Some bindings -> match_with ~ctx ~holes b ev bindings
      | None -> None)
  | Por (a, b), ev -> (
      match match_with ~ctx ~holes a ev bindings with
      | Some _ as r -> r
      | None -> match_with ~ctx ~holes b ev bindings)

let rec pp ppf = function
  | Pexpr e -> Format.fprintf ppf "{ %a }" Cprint.pp_expr e
  | Pand (a, b) -> Format.fprintf ppf "%a && %a" pp a pp b
  | Por (a, b) -> Format.fprintf ppf "%a || %a" pp a pp b
  | Pcallout e -> Format.fprintf ppf "${ %a }" Cprint.pp_expr e
  | Pend_of_path -> Format.pp_print_string ppf "$end_of_path$"
  | Pnever -> Format.pp_print_string ppf "${0}"
  | Palways -> Format.pp_print_string ppf "${1}"
