(** State tuples, transition/add edges, and block/suffix summaries
    (Sections 5.2 and 6.2).

    A state tuple is [(gstate, v)] where [v] is a variable-specific instance
    or the distinguished placeholder [<>]. Each basic block's summary records
    the union of all tuples that reached it and how each corresponding SM was
    transitioned, as two kinds of directed edges:

    - transition edges [(s, v:t→vs) → (s', v:t→vs')];
    - add edges [(s, v:t→unknown) → (s', v:t→vs')], recording instance
      creation (the special [unknown] start applies only when nothing is
      known about [t] at block entry).

    Suffix summaries have the same shape but run from a block's entry to the
    function exit; a function summary is the entry block's suffix summary.
    Edges ending in [stop] are kept in block summaries (they drive the
    intraprocedural cache) but omitted from suffix summaries, as are
    [<>]→[<>] edges except as global-transition carriers for relaxation. *)

type tvar = {
  v_key : string;
  v_tree : Cast.expr;
  v_value : string;
  v_depth : int;
      (** creation depth relative to the recording frame (ranking only;
          excluded from tuple keys) *)
}

type tuple = { t_g : string; t_v : tvar option }
(** [t_v = None] is the [<>] placeholder. *)

val unknown_value : string
(** Start-tuple value of add edges. *)

val tuple_key : tuple -> string
val tuple_equal : tuple -> tuple -> bool
(** Component-wise comparison, equivalent to comparing rendered
    {!tuple_key}s without paying for the rendering. *)

val pp_tuple : Format.formatter -> tuple -> unit

val tuple_of_instance :
  ids:Exprid.ctx -> gstate:string -> ?depth_base:int -> Sm.instance -> tuple
val global_tuple : string -> tuple
val unknown_tuple : gstate:string -> Cast.expr -> tuple

val unknown_tuple_of_instance : ids:Exprid.ctx -> gstate:string -> Sm.instance -> tuple
(** [unknown_tuple ~gstate i.target], but resolving the key through the
    instance's hash-consed [target_id] instead of re-rendering the
    expression. *)

val tuples_of_sm : ids:Exprid.ctx -> Sm.sm_inst -> tuple list
(** The extension state as a tuple set: one tuple per active instance, or
    the placeholder tuple when no instance is active. *)

type kind = Transition | Add

type edge = { e_src : tuple; e_dst : tuple; e_kind : kind }

val edge_key : edge -> string
val pp_edge : Format.formatter -> edge -> unit

val is_global_only : edge -> bool
(** Both endpoints are placeholder tuples — the special edges that record
    how a block updates the global instance. *)

val ends_in_stop : edge -> bool

(** Mutable edge-set summaries with O(1) dedup, keyed internally by
    interned tuple ids ({!Intern}) rather than rendered key strings. *)
type t

val create : ?intern:Intern.t -> unit -> t
(** [?intern] shares one intern table across summaries (the engine passes
    its per-root table, so per-instance id caches amortise across every
    block of the root); omitted, the summary gets a private table. *)

val add_edge : t -> edge -> bool
(** [true] if the edge was new. *)

val remove_edge : t -> edge -> unit
val edges : t -> edge list

val iter_edges : (edge -> unit) -> t -> unit
(** Oldest-first (insertion-order) iteration without the list copy
    [edges] builds — for the per-path relax/propagate loops. The edge
    count is read once, so edges added during iteration are not seen
    (the same snapshot semantics as iterating [edges t]). *)

val no_edges : t -> bool
(** [edges t = []] without building the list. *)

val transitions : t -> edge list
val adds : t -> edge list
val mem_src : t -> tuple -> bool
val add_src : t -> tuple -> unit
(** Record a tuple as having reached this block (the cache of Section 5.2). *)

val mem_src_instance : t -> ids:Exprid.ctx -> gstate:string -> Sm.instance -> bool
(** [mem_src t (tuple_of_instance ~ids ~gstate i)] without building the
    tuple: the probe is an integer hash lookup keyed off the instance's
    hash-consed [target_id]. *)

val mem_src_global : t -> string -> bool
(** [mem_src t (global_tuple g)] without building the tuple. *)

val instance_key_atom : Exprid.ctx -> Intern.t -> Sm.instance -> int
(** The interned atom of the instance's target key: resolved through the
    instance's hash-consed [target_id] with the id -> atom mapping cached
    on the interner ([Intern.eatom]), so the key renders at most once per
    distinct expression per root. *)

val add_src_sm : t -> ids:Exprid.ctx -> Sm.sm_inst -> unit
(** [List.iter (add_src t) (tuples_of_sm sm)] without building the tuples. *)

val key_atom : t -> string -> int
(** Atom of a tuple component (gstate, value, or rendered target key)
    under this summary's interner. *)

val tuple_id_atoms : t -> g:int -> vkey:int -> vval:int -> int
(** Tuple id from component atoms ([vkey] may be [Intern.no_var] for a
    global-only tuple) — the id {!add_edge} dedups by, computed without
    constructing the tuple. *)

val mem_edge_ids : t -> src:int -> dst:int -> kind -> bool
(** Whether an edge with these src/dst tuple ids and kind is already
    recorded. The probe-first fast path of block-edge recording: on a hit
    {!add_edge} would return [false], so the caller can skip building the
    tuple and edge records entirely. *)

val srcs_count : t -> int
val size : t -> int
val clear : t -> unit

val find_by_dst : t -> tuple -> edge list
(** Edges whose destination equals the tuple (for {!Engine}'s relax). *)

val iter_by_dst : t -> tuple -> (edge -> unit) -> unit
(** Oldest-first iteration over [find_by_dst t tup] without the copy. *)

val srcs_list : t -> string list
(** Recorded source-tuple keys, sorted (deterministic, for persistence). *)

val add_src_key : t -> string -> unit
(** Re-record a persisted source-tuple key verbatim. *)

val to_sexp : t -> Sexp.t
val of_sexp : Sexp.t -> t
(** Summary persistence: edges (in insertion order) plus src-tuple keys.
    Round-trips everything the engine's caches consult; expression trees
    are re-decoded with fresh node ids. Raises [Sexp.Decode_error]. *)

val to_bin : Wire.writer -> t -> unit
val of_bin : Wire.reader -> t
(** Binary form of the same content (edges in insertion order, sorted
    src keys) — the store's hot path, and the bytes the engine hashes as
    a summary's cutoff content hash. Raises [Wire.Corrupt]. *)

val pp : Format.formatter -> t -> unit
(** Prints the summary the way Figure 5 does: [<>]→[<>] edges are omitted
    unless they are the only content. *)
