(** Refine/restore of the extension state across a function call
    (Section 6.1, Table 2).

    The paper's rules all reduce to subtree substitution between actuals and
    formals:

    - actual [xa], state on [xa] (or [xa.field], [xa->field], [*xa], deeper):
      substitute [xa := xf] in the tracked tree, reversed at return
      (by-reference) or left alone (by-value, extension-selected);
    - actual [&xa], state on [xa] (or deeper): substitute [xa := *xf].

    Global variables pass unchanged; [static] file-scope variables are
    temporarily inactivated when the callee lives in another file; state
    attached to caller-local objects that no substitution can express is
    saved at the boundary and restored at return. *)

type mapping

val make_mapping : params:(string * Ctyp.t) list -> args:Cast.expr list -> mapping
(** Pairs each formal with its actual; more specific (larger) actuals
    substitute first. Extra actuals (variadic calls) are ignored. *)

val refine_tree : mapping -> Cast.expr -> Cast.expr
(** Caller-scope tree to callee scope (applies every applicable rule). *)

val restore_tree : mapping -> Cast.expr -> Cast.expr
(** Callee-scope tree back to caller scope. *)

val is_byval_root : mapping -> Cast.expr -> bool
(** Is the (callee-scope) tree exactly a formal that was bound by the plain
    [xa]/[xf] rule — the only row of Table 2 where the extension may choose
    pass-by-value restore semantics? *)

(** How a tracked object crosses the call boundary. *)
type xfer =
  | Mapped of Cast.expr  (** expressible in callee scope as this tree *)
  | Global_pass  (** global object: passes unchanged *)
  | Inactivate  (** file-scope object from another file: passes but sleeps *)
  | Save  (** caller-local: saved at the boundary, restored at return *)

val scope_names : Cast.fundef -> string list
(** Parameter and local names of a function — what [classify_refine] /
    [classify_restore] consult. Recomputed on every classification unless
    the caller hoists it via [?caller_scope] / [?callee_scope]; the engine
    computes it once per call boundary instead of once per instance. *)

val classify_refine :
  typing:Ctyping.env ->
  caller:Cast.fundef ->
  ?caller_scope:string list ->
  callee_file:string ->
  mapping ->
  Cast.expr ->
  xfer

(** How a callee-scope tracked object returns. *)
type back =
  | Back of Cast.expr  (** expressible in caller scope as this tree *)
  | Back_global
  | Back_dropped  (** callee-local: permanently leaves scope *)

val classify_restore :
  typing:Ctyping.env ->
  callee:Cast.fundef ->
  ?callee_scope:string list ->
  mapping ->
  Cast.expr ->
  back
