(** metal patterns and the AST matcher (Section 4).

    A base pattern is a bracketed code fragment in (extended) C; because we
    match ASTs, "spaces and other lexical artifacts do not interfere with
    matching". Base patterns compose with [&&] and [||]; callouts [${...}]
    are boolean C expressions dispatched through {!Callout}; the special
    pattern [$end_of_path$] matches the end-of-path event.

    A pattern matches {e at} a program point: the pattern's root must match
    the current AST node (the engine visits every node in execution order,
    so sub-expression actions are still seen). Repeated holes must bind
    equivalent ASTs ({!Cast.equal_expr}). *)

type t =
  | Pexpr of Cast.expr  (** base pattern: expression fragment with holes *)
  | Pand of t * t
  | Por of t * t
  | Pcallout of Cast.expr  (** [${ ... }] body *)
  | Pend_of_path
  | Pnever  (** the degenerate callout [${0}] *)
  | Palways  (** the degenerate callout [${1}] *)

type binding = Bnode of Cast.expr | Bargs of Cast.expr list

type bindings = (string * binding) list

type event =
  | At_node of Cast.expr  (** ordinary program point *)
  | At_end_of_path

val holes_of : t -> (string * Holes.t) list -> (string * Holes.t) list
(** Restrict a hole environment to the holes actually mentioned. *)

val match_event :
  ?init:bindings ->
  ctx:Callout.ctx ->
  holes:(string * Holes.t) list ->
  t ->
  event ->
  bindings option
(** [Some bindings] if the pattern matches the event. Callouts are evaluated
    with the bindings accumulated so far (so write them as right conjuncts).
    [init] pre-binds holes — the engine binds the state variable to each
    candidate instance's target before matching variable-source transitions,
    so patterns (and callouts) can constrain the tracked object directly. *)

val mentions_hole : t -> string -> bool

val can_match_node : t -> bool
(** Could the pattern ever match an [At_node] event? [false] means
    [match_event] is [None] for every node (e.g. [$end_of_path$], or a
    conjunction containing it); used to compile node candidate lists. *)

val can_match_end_of_path : t -> bool
(** Could the pattern ever match [At_end_of_path]? Base expression
    patterns cannot; callouts conservatively can. *)

val expr_of_fragment : holes:(string * Holes.t) list -> string -> Cast.expr
(** Parse the text of a base pattern fragment. Hole identifiers are ordinary
    identifiers in the fragment. Raises {!Cparse.Parse_error} on bad input. *)

val eval_callout : Callout.ctx -> bindings -> Cast.expr -> Callout.value
(** Evaluate a callout body; exposed for the action interpreter. *)

val pp : Format.formatter -> t -> unit
