(** Pretty-printer for metal definitions: prints a parsed {!Metal_ast.t}
    back to concrete metal syntax. [parse (print m) = m] up to layout — the
    round-trip property is part of the test suite, and the printer powers
    [xgcc show-checker] for generated checkers. *)

val pp_pattern : Format.formatter -> Pattern.t -> unit
val pp_dest : Format.formatter -> Metal_ast.dest -> unit
val pp_action : Format.formatter -> Metal_ast.action_stmt -> unit
val pp_rule : Format.formatter -> Metal_ast.rule -> unit
val pp : Format.formatter -> Metal_ast.t -> unit
val to_string : Metal_ast.t -> string
