(** Compiled transition dispatch (head-constructor indexing).

    [compile] turns an extension's transition list into a form the engine
    can probe in O(candidates) per node instead of O(transitions):
    per-transition metadata precomputed once, a discrimination index from
    the subject node's root constructor to the transitions whose pattern
    root could possibly match it, and per-block skip sets derived from
    {!Block_heads} summaries.

    The index is sound because {!Pattern.match_expr} compares a non-hole
    pattern root literally against the subject's root constructor (subject
    casts are stripped only at hole positions): a call pattern [f(...)]
    with a concrete callee matches only calls to [f], a deref pattern only
    deref nodes, and so on. Hole-rooted and callout-only patterns can
    match anything and live in a wildcard fallback list appended to every
    bucket. Candidate lists preserve declaration order, so
    first-match-wins semantics — and therefore reports — are identical to
    the naive full scan. Compiling with [~indexed:false] keeps the
    metadata but makes every candidate query return the full
    node-matching list and every block live (the engine's
    [--no-dispatch-index] A/B mode). *)

type ctr = {
  c_tr : Sm.transition;
  c_src_var : string option;  (** [Src_var v] source value *)
  c_src_global : string option;  (** [Src_global g] source value *)
  c_src_global_code : int;
      (** interned {!state_code} of [c_src_global]; -1 when the source is
          not global *)
  c_call_model : Pattern.t option;
      (** the sub-pattern matched at nodes for callsite modelling
          (Section 6); [None] when the pattern cannot model a call *)
  c_holes : (string * Holes.t) list;
      (** the extension's hole environment restricted to holes the
          pattern mentions *)
  c_mentions_svar : bool;  (** pattern mentions the state variable *)
  c_matches_node : bool;  (** {!Pattern.can_match_node} *)
  c_matches_eop : bool;  (** {!Pattern.can_match_end_of_path} *)
}

type bucket = {
  b_trs : int array;
      (** candidate transition indices, declaration order *)
  b_any_model : bool;  (** some candidate has a callsite model *)
  b_has_var : bool;  (** some candidate has a [Src_var] source *)
  b_globals : string array;
      (** distinct [Src_global] source states of the candidates *)
  b_global_codes : int array;
      (** the same states as interned {!state_code}s, index-aligned with
          [b_globals] — the engine's prescan compares ints *)
}
(** A candidate list plus the prescan facts the engine needs before
    touching any transition, precomputed so the per-node no-match check
    is field reads instead of a per-transition loop. *)

type t

val compile : ?indexed:bool -> sg:Supergraph.t -> Sm.t -> t
(** Compile an extension against a supergraph. [indexed] (default true)
    enables the head index and block skip sets; the metadata is computed
    either way. The block skip set is computed eagerly over the
    supergraph's flat block table, so the returned value is immutable and
    safe to share read-only across engine worker domains — the parallel
    scheduler compiles each extension once and hands every worker the
    same [t]. *)

val indexed : t -> bool
val transitions : t -> ctr array

val states : t -> string array
(** The extension's statically known state values, coded densely in
    declaration order: code 0 is reserved for {!Sm.stop_value}, then the
    start state, then every source and destination value of the
    transition list. Runtime [set_global] actions can write strings
    outside this set, so [Sm.sm_inst] keeps gstates as strings and codes
    are resolved by content at comparison boundaries. *)

val state_code : t -> string -> int
(** The dense code of a state value, or -1 when the string is outside the
    static state table (a runtime-synthesised gstate that matches no
    static source). Two states compare equal iff their codes do and
    neither is -1. *)

val all_node : t -> int array
(** Indices (in declaration order) of transitions that can match node
    events at all — the candidate list of the unindexed mode. *)

val candidates : t -> Cast.expr -> bucket
(** The bucket whose [b_trs] holds indices of transitions whose pattern
    root could match this node, sorted in declaration order; a superset
    of the transitions that actually match, a subset of [all_node].
    Without the index this is the [all_node] bucket itself. *)

val eop_var : t -> int array
(** Variable-source transitions that can match end-of-path events. *)

val eop_global : t -> int array
(** Global-source transitions that can match end-of-path events. *)

val block_live_flat : t -> int -> bool
(** Could any transition of this extension match any node of the block
    with this flat id ({!Supergraph}[.flat])? [false] lets the engine
    skip [apply_transitions] for the whole block; end-of-path and write
    handling are unaffected. Always [true] without the index and for
    out-of-range ids (unknown functions). *)

(** {1 Callsite modelling} *)

val expr_shape_is_call : Cast.expr -> bool
(** Does the expression's value come from a call? Looks through
    assignment and cast chains, comma right-hand sides and both
    conditional arms. *)

val pattern_models_call : Pattern.t -> bool

val call_model : Pattern.t -> Pattern.t option
(** The sub-pattern to match at nodes for callsite modelling: call-shaped
    disjuncts and callouts survive, other disjuncts are dropped (a bare
    hole must not suppress following a call it incidentally matches);
    conjunctions are kept whole. [None] when nothing call-shaped
    remains. *)

(** {1 Classification (exposed for tests)} *)

type classified =
  | Wildcard
      (** matches via the fallback list: hole-rooted or callout-only *)
  | Rooted of {
      shapes : Block_heads.shape list;
      calls : string list;
      any_call : bool;
    }

val classify : holes:(string * Holes.t) list -> Pattern.t -> classified
(** How the index classifies a pattern's root. [Rooted] with all fields
    empty means the pattern can never match a node event. *)
