type decl = { d_state : bool; d_hole : Holes.t; d_names : string list }

type dest =
  | Dvar of string * string
  | Dglobal of string
  | Dbranch of dest * dest
  | Dnone

type action_stmt = { ac_name : string; ac_args : Cast.expr list; ac_loc : Srcloc.t }

type rule = {
  r_pattern : Pattern.t;
  r_dest : dest;
  r_actions : action_stmt list;
  r_loc : Srcloc.t;
}

type source = Sglobal of string | Svar of string * string
type clause = { c_source : source; c_rules : rule list }

type t = {
  sm_name : string;
  sm_decls : decl list;
  sm_clauses : clause list;
  sm_options : string list;
  sm_loc : Srcloc.t;
}

let svar_of t =
  List.find_map
    (fun d -> if d.d_state then List.nth_opt d.d_names 0 else None)
    t.sm_decls

let holes_of t =
  List.concat_map (fun d -> List.map (fun n -> (n, d.d_hole)) d.d_names) t.sm_decls
