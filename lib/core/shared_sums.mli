(** Publish-once table of shared summary units, safe across worker
    domains.

    The parallel scheduler runs one callgraph root per task; callee
    summaries whose entry context is pure (characterized by the callee
    name and inbound machine state alone) are the same in every root that
    demands them, so recomputing one per worker — what static chunking
    did — is pure waste. This table makes each such unit compute exactly
    once fleet-wide:

    - {!acquire} either hands the caller the published record ([Ready]),
      or makes the caller the unit's computer ([Claimed]), or blocks
      until the worker that claimed it publishes or aborts.
    - {!publish} installs an immutable record, first-writer-wins, and
      wakes all waiters. The record must be self-contained (no mutable
      state reachable from it may be written afterwards) — readers in
      other domains see it without further synchronization.
    - {!abort} retracts a claim without publishing (the computation blew
      its budget or crashed); waiters wake and re-acquire, and the next
      demander re-claims. An aborted unit's re-computation is not counted
      as a recompute — the first attempt produced nothing.

    Deadlock freedom is the caller's obligation: a claimed unit must
    never (transitively) acquire a unit that can be waiting on it. The
    engine guarantees this by only sharing units with a finite acyclic
    callee height — a wait cycle would imply a call cycle, and cyclic
    functions are never shared.

    The table is sharded (hash of the key picks a mutex + condition +
    hashtable), so unrelated units never contend. *)

type 'a t

val create : ?shards:int -> unit -> 'a t
(** [shards] (default 64) is rounded up to a power of two. *)

type 'a claim = Claimed | Ready of 'a

val acquire : 'a t -> string -> 'a claim
(** Blocks while another worker has the key claimed. *)

val publish : 'a t -> string -> 'a -> unit
(** First-writer-wins: publishing over an existing record drops the new
    one and increments the recompute counter — the scheduler's "this
    should never happen" tripwire. *)

val abort : 'a t -> string -> unit
(** Retract a claim without publishing; no-op on published/absent keys. *)

val find_published : 'a t -> string -> 'a option
(** The published record under [key], without claiming or waiting:
    [None] while the key is absent or still being computed. The engine
    uses this to charge a replayed unit's transitive dependencies to a
    budgeted root's fuel — every dependency of a published unit is
    itself published before the unit is. *)

val fold_published : 'a t -> (string -> 'a -> 'acc -> 'acc) -> 'acc -> 'acc
(** Fold over all published records in sorted key order — deterministic
    regardless of publication order, which is what lets the engine fold
    per-unit counters into the final stats exactly once, identically at
    any [-j]. Call after workers join (it locks each shard, but a
    concurrent publish could otherwise be missed). *)

type stats = { published : int; waits : int; recomputed : int }

val stats : 'a t -> stats
(** [waits] counts acquires that blocked on a claimed key (each acquire
    at most once); [recomputed] counts dropped duplicate publishes. *)
