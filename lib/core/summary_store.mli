(** Persistent, content-addressed store for pass-2 analysis results.

    Two kinds of entries, both keyed by an {e extension key} (a digest of
    the store format version, the engine options, and the chain of
    extension sources up to and including this one — earlier extensions'
    annotations feed later ones, so an edit to any earlier extension must
    invalidate everything downstream):

    - {e function-summary entries} ([sum/]): one per defined function,
      carrying the block and suffix summaries plus returned-state keys,
      validated against the function's transitive-callee closure hash.
      These are the invalidation ledger — editing a leaf callee flips
      exactly that function's and its transitive callers' entries to
      stale ({!probe}) — and the write-back artifact of a run.
    - {e root replay entries} ([root/]): the complete result of analysing
      one callgraph root (reports, counter deltas, annotation deltas,
      traversed set, stat counters), validated the same way. A warm run
      replays valid roots verbatim and recomputes only invalid ones,
      which is what makes warm output byte-identical to a cold run:
      seeding summaries into a live traversal would take summary hits
      that suppress exactly the re-traversals that emit reports.

    All writes are atomic (tmp + rename in the target directory), so a
    store may be shared by concurrent runs. Unreadable or mismatched
    entries degrade to misses, never to errors. *)

type t

type probe = Hit | Stale | Absent

type stats = {
  mutable ast_hits : int;  (** pass-1 object-cache hits (driver-maintained) *)
  mutable ast_misses : int;
  mutable fn_hits : int;  (** function-summary entries still valid *)
  mutable fn_stale : int;  (** present but closure hash changed *)
  mutable fn_absent : int;
  mutable roots_replayed : int;
  mutable roots_recomputed : int;
}

val create : dir:string -> ?persist:bool -> ext_keys:Fingerprint.t list -> unit -> t
(** [persist] (default true): when false the store is read-only — warm
    hits still replay but nothing is written back. [ext_keys] must align
    positionally with the extension list handed to [Engine.run]. *)

val ext_keys_of : options_digest:string -> sources:string list -> Fingerprint.t list
(** The chain-prefix keys: the key for extension [i] digests the store
    version, [options_digest], and [sources.(0..i)]. *)

val ext_key : t -> int -> Fingerprint.t
val persist : t -> bool
val stats : t -> stats

val pp_stats : Format.formatter -> t -> unit
(** One [--stats] line: AST, function-summary and root cache counters. *)

(** {1 Function-summary entries} *)

val probe_fn : t -> ext:Fingerprint.t -> fname:string -> closure:Fingerprint.t -> probe
(** Validity check only (bumps [fn_*] stats): is the stored entry for
    [fname] still keyed by [closure]? *)

val store_fn :
  t ->
  ext:Fingerprint.t ->
  fname:string ->
  closure:Fingerprint.t ->
  bs:Summary.t array ->
  sfx:Summary.t array ->
  rets:string list ->
  unit

val load_fn :
  t ->
  ext:Fingerprint.t ->
  fname:string ->
  closure:Fingerprint.t ->
  (Summary.t array * Summary.t array * string list) option
(** [None] on absence, closure mismatch, or a corrupt entry. *)

(** {1 Root replay entries} *)

type root_entry = {
  r_root : string;
  r_closure : Fingerprint.t;
  r_reports : Report.t list;  (** in emission order *)
  r_counters : (string * int * int) list;
  r_annots : (Srcloc.t * string * string * int * string list) list;
      (** annotation delta: (location, printed expression, enclosing
          global definition, occurrence rank, tags oldest-first) — node
          ids are not stable across runs, so deltas are stored
          positionally and re-resolved against the current ASTs at replay
          time; the definition name and occurrence rank disambiguate
          positional twins (the same header parsed into two translation
          units, macro expansion repeating an expression at one location)
          so replay targets exactly the node the worker annotated *)
  r_traversed : string list;
  r_stats : int list;  (** engine stat counters, in [Engine]'s field order *)
}

val load_root :
  t -> ext:Fingerprint.t -> root:string -> closure:Fingerprint.t -> root_entry option
(** Bumps [roots_replayed] on a hit, [roots_recomputed] otherwise. *)

val store_root : t -> ext:Fingerprint.t -> root_entry -> unit
(** No-op when the store was opened with [persist:false]. *)
