(** Persistent, content-addressed store for pass-2 analysis results.

    Two kinds of entries, both keyed by an {e extension key} (a digest of
    the store format version, the engine options, and the chain of
    extension sources up to and including this one — earlier extensions'
    annotations feed later ones, so an edit to any earlier extension must
    invalidate everything downstream):

    - {e function-summary entries} ([sum/]): one per defined function,
      carrying the block and suffix summaries plus returned-state keys.
      Each entry holds two fingerprints: the {e key}, a digest of the
      function's own body, the file-scope declarations, its callees'
      summary {e content} hashes, and the relevant annotation state; and
      the {e content} hash, a digest of the summaries the entry actually
      records. The two levels are what give early cutoff: when an edit
      changes a function's body but recomputation produces the same
      content hash, callers' keys (which fold content, not body) still
      validate and their entries survive.
    - {e root replay entries} ([root/]): the complete result of analysing
      one callgraph root (reports, counter deltas, annotation deltas,
      traversed set, stat counters), keyed by the content hashes of the
      root's transitive closure. A warm run replays valid roots verbatim
      and recomputes only invalid ones, which is what makes warm output
      byte-identical to a cold run: seeding summaries into a live
      traversal would take summary hits that suppress exactly the
      re-traversals that emit reports.

    Entries are versioned, length-prefixed binary frames ({!Wire}); the
    sexp renderings survive only as the [cache dump] debugging view. All
    writes are atomic (tmp + rename in the target directory), so a store
    may be shared by concurrent runs. Unreadable, truncated, or
    mismatched entries degrade to misses, never to errors. *)

type t

type stats = {
  mutable ast_hits : int;  (** pass-1 object-cache hits (driver-maintained) *)
  mutable ast_misses : int;
  mutable fn_hits : int;  (** function-summary entries still valid *)
  mutable fn_stale : int;  (** present but key changed *)
  mutable fn_absent : int;
  mutable roots_replayed : int;
  mutable roots_recomputed : int;
  mutable fns_recomputed : int;
      (** functions whose summary the cutoff pass had to recompute *)
  mutable sums_unchanged : int;
      (** recomputed functions whose content hash matched the stale entry
          — the early-cutoff wins *)
  mutable roots_salvaged : int;
      (** replayed roots whose closure intersects the recomputed set —
          roots that only replay because cutoff fired *)
}

val store_version : string
(** Salted into every extension key: bumping it orphans all existing
    entries (they become unreachable, never misdecoded) and is recorded
    in the store directory's [VERSION] stamp. *)

val create :
  dir:string -> ?persist:bool -> ?memory:bool -> ext_keys:Fingerprint.t list -> unit -> t
(** [persist] (default true): when false nothing is written to disk —
    warm hits still replay but on-disk entries are never updated.
    [memory] (default false): keep every entry that passes through the
    store decoded in process memory, so repeat probes skip both the disk
    read and the binary decode. A long-lived daemon opens its store with
    [memory:true]; combined with [persist:false] this yields a fully
    in-memory incremental store that never touches disk (the first probe
    of each entry still consults [dir], so an existing on-disk store
    warms the tables). [ext_keys] must align positionally with the
    extension list handed to [Engine.run]. When persisting, stamps
    [dir/VERSION] with {!store_version}. *)

val ext_keys_of : options_digest:string -> sources:string list -> Fingerprint.t list
(** The chain-prefix keys: the key for extension [i] digests the store
    version, [options_digest], and [sources.(0..i)]. *)

val ext_key : t -> int -> Fingerprint.t

val persist : t -> bool
(** Whether the store accepts writes — true when it writes disk entries
    {e or} captures them in memory; the engine skips building entries
    entirely for a store that does neither. *)

val disk_persist : t -> bool
(** Whether entries also flow to disk — distinguishes a memory-only
    daemon store from one layered over a persistent [--cache-dir]. *)

val in_memory : t -> bool

val mem_entries : t -> int
(** Decoded entries currently held by the in-memory overlay (0 for a
    disk-only store) — observability for the daemon's [stats] reply. *)

val stats : t -> stats

val reset_stats : t -> unit
(** Zero all counters. The daemon calls this before each warm re-check so
    [stats] describes exactly one request instead of the process
    lifetime. *)

val pp_stats : Format.formatter -> t -> unit
(** One [--stats] line: AST, function-summary, root, and cutoff counters. *)

(** {1 Function-summary entries} *)

type fn_entry = {
  f_name : string;
  f_key : Fingerprint.t;
  f_content : Fingerprint.t;
  f_bs : Summary.t array;
  f_sfx : Summary.t array;
  f_rets : string list;
}

type probe = Hit of fn_entry | Stale of Fingerprint.t | Absent
(** [Hit] carries the decoded entry (the canonical pass seeds callers
    from it without re-reading). [Stale] carries the {e old} content
    hash, so after recomputation the engine can detect that the content
    did not actually change and count the cutoff. *)

val probe_fn : t -> ext:Fingerprint.t -> fname:string -> key:Fingerprint.t -> probe
(** Decode the stored entry for [fname] and validate its key (bumps
    [fn_*] stats). Corrupt or mismatched-name entries are [Absent]. *)

val store_fn :
  t ->
  ext:Fingerprint.t ->
  fname:string ->
  key:Fingerprint.t ->
  content:Fingerprint.t ->
  bs:Summary.t array ->
  sfx:Summary.t array ->
  rets:string list ->
  unit

(** {1 Root replay entries} *)

type root_entry = {
  r_root : string;
  r_key : Fingerprint.t;
  r_reports : Report.t list;  (** in emission order *)
  r_counters : (string * int * int) list;
  r_annots : (Srcloc.t * string * string * int * string list) list;
      (** annotation delta: (location, printed expression, enclosing
          global definition, occurrence rank, tags oldest-first) — node
          ids are not stable across runs, so deltas are stored
          positionally and re-resolved against the current ASTs at replay
          time; the definition name and occurrence rank disambiguate
          positional twins (the same header parsed into two translation
          units, macro expansion repeating an expression at one location)
          so replay targets exactly the node the worker annotated *)
  r_traversed : string list;
  r_stats : int list;  (** engine stat counters, in [Engine]'s field order *)
}

val load_root :
  t -> ext:Fingerprint.t -> root:string -> key:Fingerprint.t -> root_entry option
(** Bumps [roots_replayed] on a hit, [roots_recomputed] otherwise. *)

val store_root : t -> ext:Fingerprint.t -> root_entry -> unit
(** No-op when the store was opened with [persist:false]. *)

(** {1 Inspection (the [cache stats] / [cache dump] CLI)} *)

val save_last_run : t -> unit
(** Persist the run's counters to [dir/last-run] (plain ["name value"]
    lines) so a later [cache stats] can report them. No-op when
    [persist:false]. *)

val load_last_run : dir:string -> (string * int) list option

type disk_kind = { dk_files : int; dk_bytes : int }

type disk = {
  d_version : string option;  (** the [VERSION] stamp, if readable *)
  d_ast : disk_kind;
  d_sum : disk_kind;
  d_root : disk_kind;
}

val disk_stats : dir:string -> disk
(** Count entry files and bytes per kind without decoding anything. *)

val dump_entry : string -> (Sexp.t, string) result
(** Decode one entry file (kind recognised by magic) and render it as a
    sexp for human inspection. *)
