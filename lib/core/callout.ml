type value =
  | Vbool of bool
  | Vint of int64
  | Vstr of string
  | Vast of Cast.expr
  | Vargs of Cast.expr list
  | Vunit

type ctx = {
  typing : Ctyping.env;
  node : Cast.expr option;
  annots : (int, string list) Hashtbl.t;
}

type fn = ctx -> value list -> value

let registry : (string, fn) Hashtbl.t = Hashtbl.create 32
let register name fn = Hashtbl.replace registry name fn

let truthy = function
  | Vbool b -> b
  | Vint n -> not (Int64.equal n 0L)
  | Vstr s -> not (String.equal s "")
  | Vast _ | Vargs _ -> true
  | Vunit -> false

let ast_of = function
  | Vast e -> Some e
  | _ -> None

let call_name (e : Cast.expr) =
  match e.enode with
  | Cast.Eident f -> Some f
  | Cast.Ecall ({ enode = Cast.Eident f; _ }, _) -> Some f
  | _ -> None

let installed = ref false

let install_builtins () =
  if not !installed then begin
    installed := true;
    register "mc_is_call_to" (fun _ctx args ->
        match args with
        | [ v; Vstr name ] -> (
            match ast_of v with
            | Some e -> Vbool (Option.equal String.equal (call_name e) (Some name))
            | None -> Vbool false)
        | _ -> Vbool false);
    register "mc_identifier" (fun _ctx args ->
        match args with
        | [ Vast e ] -> Vstr (Cprint.expr_to_string e)
        | _ -> Vstr "?");
    register "mc_is_constant" (fun _ctx args ->
        match args with
        | [ Vast e ] -> Vbool (Option.is_some (Cparse.const_eval e))
        | _ -> Vbool false);
    register "mc_constant_value" (fun _ctx args ->
        match args with
        | [ Vast e ] -> (
            match Cparse.const_eval e with Some n -> Vint n | None -> Vunit)
        | _ -> Vunit);
    register "mc_is_pointer" (fun ctx args ->
        match args with
        | [ Vast e ] -> Vbool (Ctyping.is_pointer_expr ctx.typing e)
        | _ -> Vbool false);
    register "mc_is_scalar" (fun ctx args ->
        match args with
        | [ Vast e ] -> Vbool (Ctyping.is_scalar_expr ctx.typing e)
        | _ -> Vbool false);
    register "mc_num_args" (fun _ctx args ->
        match args with
        | [ Vargs es ] -> Vint (Int64.of_int (List.length es))
        | _ -> Vint 0L);
    register "mc_nth_arg" (fun _ctx args ->
        match args with
        | [ Vargs es; Vint n ] -> (
            match List.nth_opt es (Int64.to_int n) with
            | Some e -> Vast e
            | None -> Vunit)
        | _ -> Vunit);
    register "mc_contains" (fun _ctx args ->
        match args with
        | [ Vast hay; Vast needle ] -> Vbool (Cast.contains_expr ~needle hay)
        | _ -> Vbool false);
    register "mc_annotated" (fun ctx args ->
        match args with
        | [ Vast e; Vstr tag ] ->
            Vbool
              (match Hashtbl.find_opt ctx.annots e.eid with
              | Some tags -> List.mem tag tags
              | None -> false)
        | [ Vstr tag ] ->
            Vbool
              (match ctx.node with
              | Some n -> (
                  match Hashtbl.find_opt ctx.annots n.eid with
                  | Some tags -> List.mem tag tags
                  | None -> false)
              | None -> false)
        | _ -> Vbool false);
    register "mc_derefs" (fun _ctx args ->
        (* does this node read through the pointer: *v, v->f, v[i] *)
        match args with
        | [ Vast node; Vast v ] ->
            Vbool
              (match node.Cast.enode with
              | Cast.Eunary (Cast.Deref, e1)
              | Cast.Earrow (e1, _)
              | Cast.Eindex (e1, _) ->
                  Cast.equal_expr e1 v
              | _ -> false)
        | _ -> Vbool false);
    register "mc_is_ident" (fun _ctx args ->
        match args with
        | [ Vast { Cast.enode = Cast.Eident _; _ } ] -> Vbool true
        | _ -> Vbool false);
    register "mc_name_contains" (fun _ctx args ->
        match args with
        | [ Vast e; Vstr sub ] -> (
            match call_name e with
            | Some name ->
                let contains s sub =
                  let n = String.length s and m = String.length sub in
                  let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
                  m = 0 || go 0
                in
                Vbool (contains name sub)
            | None -> Vbool false)
        | _ -> Vbool false)
  end

let lookup name =
  install_builtins ();
  Hashtbl.find_opt registry name

let names () =
  install_builtins ();
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) registry [])
