type bug_kind =
  | Use_after_free
  | Double_free
  | Missing_unlock
  | Double_lock
  | Null_deref
  | User_pointer_deref
  | Interrupts_left_off

type planted = { in_function : string; kind : bug_kind }
type t = { source : string; planted : planted list }

let bug_kind_to_string = function
  | Use_after_free -> "use-after-free"
  | Double_free -> "double-free"
  | Missing_unlock -> "missing-unlock"
  | Double_lock -> "double-lock"
  | Null_deref -> "null-deref"
  | User_pointer_deref -> "user-pointer-deref"
  | Interrupts_left_off -> "interrupts-left-off"

let checker_of_kind = function
  | Use_after_free | Double_free -> "free"
  | Missing_unlock | Double_lock -> "lock"
  | Null_deref -> "null"
  | User_pointer_deref -> "security"
  | Interrupts_left_off -> "intr"

type scenario =
  | Alloc
  | Locking
  | User_ptr
  | Interrupts
  | Helper_call
  | Null_check
  | Goto_cleanup
  | Lock_helper

let scenarios =
  [|
    Alloc; Locking; User_ptr; Interrupts; Helper_call; Null_check; Goto_cleanup;
    Lock_helper;
  |]

let gen_function rng buf ~prefix idx ~bug_rate planted =
  let fname = Printf.sprintf "%sgen_fn_%d" prefix idx in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  let buggy = Random.State.float rng 1.0 < bug_rate in
  let plant kind = planted := { in_function = fname; kind } :: !planted in
  let scenario = scenarios.(Random.State.int rng (Array.length scenarios)) in
  (match scenario with
  | Alloc ->
      add "int %s(int n, int mode) {\n" fname;
      add "  int *buf = kmalloc(n);\n";
      add "  if (!buf) { return -1; }\n";
      add "  *buf = n;\n";
      (* some incidental control flow *)
      add "  if (mode > 2) { *buf = *buf + mode; }\n";
      if buggy then begin
        match Random.State.int rng 2 with
        | 0 ->
            plant Use_after_free;
            add "  kfree(buf);\n";
            add "  return *buf;\n"
        | _ ->
            plant Double_free;
            add "  kfree(buf);\n";
            add "  if (mode) { kfree(buf); }\n";
            add "  return 0;\n"
      end
      else begin
        add "  n = *buf;\n";
        add "  kfree(buf);\n";
        add "  return n;\n"
      end;
      add "}\n"
  | Locking ->
      add "int %s(struct lk *l, int st) {\n" fname;
      if buggy && Random.State.bool rng then begin
        plant Double_lock;
        add "  lock(l);\n";
        add "  if (st > 0) { lock(l); }\n";
        add "  unlock(l);\n";
        add "  return st;\n"
      end
      else if buggy then begin
        plant Missing_unlock;
        add "  lock(l);\n";
        add "  if (st < 0) { return st; }\n";
        add "  unlock(l);\n";
        add "  return st;\n"
      end
      else begin
        add "  if (trylock(l)) {\n";
        add "    st = st + 1;\n";
        add "    unlock(l);\n";
        add "  }\n";
        add "  return st;\n"
      end;
      add "}\n"
  | User_ptr ->
      add "int %s(int len) {\n" fname;
      add "  char *u = get_user_pointer(len);\n";
      add "  char kbuf[64];\n";
      if buggy then begin
        plant User_pointer_deref;
        add "  return *u;\n"
      end
      else begin
        add "  copy_from_user(kbuf, u, len);\n";
        add "  return kbuf[0];\n"
      end;
      add "}\n"
  | Interrupts ->
      add "int %s(int work) {\n" fname;
      add "  cli();\n";
      add "  work = work * 2;\n";
      if buggy then begin
        plant Interrupts_left_off;
        add "  if (work > 10) { return work; }\n"
      end;
      add "  sti();\n";
      add "  return work;\n";
      add "}\n"
  | Null_check ->
      add "int %s(int n) {\n" fname;
      add "  int *item = kmalloc(n);\n";
      if buggy then begin
        plant Null_deref;
        add "  *item = n;\n"
      end
      else begin
        add "  if (!item) { return -1; }\n";
        add "  *item = n;\n"
      end;
      add "  kfree(item);\n";
      add "  return 0;\n";
      add "}\n"
  | Goto_cleanup ->
      add "int %s(struct lk *l, int st) {\n" fname;
      add "  int err;\n";
      add "  lock(l);\n";
      add "  err = 0;\n";
      if buggy then begin
        plant Missing_unlock;
        add "  if (st < 0) { err = -22; goto out; }\n";
        add "  unlock(l);\n";
        add "out:\n";
        add "  return err;\n"
      end
      else begin
        add "  if (st < 0) { err = -22; goto out; }\n";
        add "  st = st + 1;\n";
        add "out:\n";
        add "  unlock(l);\n";
        add "  return err + st;\n"
      end;
      add "}\n"
  | Lock_helper ->
      (* interprocedural lock state: the release lives in a helper *)
      add "static void %s_finish(struct lk *l) { unlock(l); }\n" fname;
      add "int %s(struct lk *l, int n) {\n" fname;
      add "  lock(l);\n";
      add "  n = n * 2;\n";
      if buggy then begin
        plant Missing_unlock;
        add "  if (n < 0) { return n; }\n"
      end;
      add "  %s_finish(l);\n" fname;
      add "  return n;\n";
      add "}\n"
  | Helper_call ->
      (* interprocedural: a helper that frees, a caller that may misuse *)
      add "static void %s_release(int *p) { kfree(p); }\n" fname;
      add "int %s(int n) {\n" fname;
      add "  int *obj = kmalloc(n);\n";
      add "  if (!obj) { return -1; }\n";
      add "  *obj = n;\n";
      add "  %s_release(obj);\n" fname;
      if buggy then begin
        plant Use_after_free;
        add "  return *obj;\n"
      end
      else add "  return n;\n";
      add "}\n");
  add "\n"

let generate_with ~prefix ~seed ~n_funcs ~bug_rate =
  let rng = Random.State.make [| seed |] in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "struct lk { int held; };\n\n";
  let planted = ref [] in
  for i = 0 to n_funcs - 1 do
    gen_function rng buf ~prefix i ~bug_rate planted
  done;
  { source = Buffer.contents buf; planted = List.rev !planted }

let generate ~seed ~n_funcs ~bug_rate = generate_with ~prefix:"" ~seed ~n_funcs ~bug_rate

let helpers_file =
  "struct lk { int held; };\n\
   void shared_release(int *p) { kfree(p); }\n\
   void shared_unlock(struct lk *l) { unlock(l); }\n\
   int *shared_alloc(int n) { int *p = kmalloc(n); return p; }\n"

let gen_linked_function rng buf ~prefix idx ~bug_rate planted =
  let fname = Printf.sprintf "%sxfn_%d" prefix idx in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  let buggy = Random.State.float rng 1.0 < bug_rate in
  let plant kind = planted := { in_function = fname; kind } :: !planted in
  match Random.State.int rng 2 with
  | 0 ->
      add "int %s(int n) {\n" fname;
      add "  int *obj = shared_alloc(n);\n";
      add "  if (!obj) { return -1; }\n";
      add "  *obj = n;\n";
      add "  shared_release(obj);\n";
      if buggy then begin
        plant Use_after_free;
        add "  return *obj;\n"
      end
      else add "  return n;\n";
      add "}\n\n"
  | _ ->
      add "int %s(struct lk *l, int st) {\n" fname;
      add "  lock(l);\n";
      if buggy then begin
        plant Missing_unlock;
        add "  if (st < 0) { return st; }\n"
      end;
      add "  shared_unlock(l);\n";
      add "  return st;\n";
      add "}\n\n"

let generate_linked ~seed ~n_files ~funcs_per_file ~bug_rate =
  let files =
    List.init n_files (fun i ->
        let rng = Random.State.make [| seed + (977 * i) |] in
        let buf = Buffer.create 4096 in
        Buffer.add_string buf "struct lk { int held; };\n\n";
        let planted = ref [] in
        for j = 0 to funcs_per_file - 1 do
          gen_linked_function rng buf ~prefix:(Printf.sprintf "f%d_" i) j ~bug_rate
            planted
        done;
        ( Printf.sprintf "linked_%d.c" i,
          { source = Buffer.contents buf; planted = List.rev !planted } ))
  in
  ("helpers.c", { source = helpers_file; planted = [] }) :: files

let generate_files ~seed ~n_files ~funcs_per_file ~bug_rate =
  List.init n_files (fun i ->
      let g =
        generate_with ~prefix:(Printf.sprintf "f%d_" i) ~seed:(seed + (1000 * i))
          ~n_funcs:funcs_per_file ~bug_rate
      in
      (Printf.sprintf "gen_%d.c" i, g))
