let buf_program f =
  let b = Buffer.create 4096 in
  f b;
  Buffer.contents b

let diamond_chain ~n =
  buf_program (fun b ->
      Buffer.add_string b "int diamond(int *p, int c0) {\n";
      Buffer.add_string b "  int acc = 0;\n";
      Buffer.add_string b "  kfree(p);\n";
      for i = 0 to n - 1 do
        Buffer.add_string b
          (Printf.sprintf "  if (c0 + %d) { acc = acc + %d; } else { acc = acc - %d; }\n"
             i (i + 1) (i + 1))
      done;
      Buffer.add_string b "  return *p + acc;\n";
      Buffer.add_string b "}\n")

let many_tracked ~n =
  buf_program (fun b ->
      Buffer.add_string b "int many(void) {\n";
      for i = 0 to n - 1 do
        Buffer.add_string b (Printf.sprintf "  int *p%d = kmalloc(8);\n" i)
      done;
      for i = 0 to n - 1 do
        Buffer.add_string b (Printf.sprintf "  kfree(p%d);\n" i)
      done;
      Buffer.add_string b "  int acc = 0;\n";
      for i = 0 to n - 1 do
        Buffer.add_string b (Printf.sprintf "  acc = acc + *p%d;\n" i)
      done;
      Buffer.add_string b "  return acc;\n}\n")

let call_chain ~depth =
  buf_program (fun b ->
      Buffer.add_string b (Printf.sprintf "void f%d(int *p) { kfree(p); }\n" depth);
      for i = depth - 1 downto 1 do
        Buffer.add_string b
          (Printf.sprintf "void f%d(int *p) { f%d(p); }\n" i (i + 1))
      done;
      Buffer.add_string b "int f0(int *p) {\n  f1(p);\n  return *p;\n}\n")

let call_tree ~depth ~fanout =
  buf_program (fun b ->
      Buffer.add_string b "void helper(int *p) { kfree(p); }\n";
      (* level [depth] are leaves *)
      let name level idx = Printf.sprintf "t%d_%d" level idx in
      let width level =
        let rec pow acc k = if k = 0 then acc else pow (acc * fanout) (k - 1) in
        pow 1 level
      in
      for idx = 0 to width depth - 1 do
        Buffer.add_string b
          (Printf.sprintf "void %s(int *p) { helper(p); }\n" (name depth idx))
      done;
      for level = depth - 1 downto 1 do
        for idx = 0 to width level - 1 do
          Buffer.add_string b (Printf.sprintf "void %s(int *p) {\n" (name level idx));
          for k = 0 to fanout - 1 do
            Buffer.add_string b
              (Printf.sprintf "  %s(p);\n" (name (level + 1) ((idx * fanout) + k)))
          done;
          Buffer.add_string b "}\n"
        done
      done;
      Buffer.add_string b "int troot(int *p) {\n";
      for k = 0 to fanout - 1 do
        Buffer.add_string b (Printf.sprintf "  %s(p);\n" (name 1 k))
      done;
      Buffer.add_string b "  return *p;\n}\n")

let sched_corpus ~n_roots ~light ~heavy =
  buf_program (fun b ->
      (* one hot leaf shared by every root, reached through a per-root
         diamond (root -> mid_a/mid_b -> hub) *)
      Buffer.add_string b "void hub(int *p) { kfree(p); }\n";
      for r = 0 to n_roots - 1 do
        Buffer.add_string b (Printf.sprintf "void mid_a_%d(int *p) { hub(p); }\n" r);
        Buffer.add_string b (Printf.sprintf "void mid_b_%d(int *p) { hub(p); }\n" r)
      done;
      for r = 0 to n_roots - 1 do
        (* uneven private cost: the mid-list root is [heavy] diamonds, the
           rest [light] — a static contiguous partition puts the whole
           imbalance on one worker *)
        let w = if r = n_roots / 2 then heavy else light in
        Buffer.add_string b
          (Printf.sprintf "int root%d(int *p, int c) {\n  int acc = 0;\n" r);
        for i = 0 to w - 1 do
          Buffer.add_string b
            (Printf.sprintf
               "  if (c + %d) { acc = acc + %d; } else { acc = acc - %d; }\n" i
               (i + 1) (i + 1))
        done;
        (* branch, don't sequence: either arm frees [p] exactly once, so
           every path ends in one use-after-free at this root's return *)
        Buffer.add_string b
          (Printf.sprintf
             "  if (acc) { mid_a_%d(p); } else { mid_b_%d(p); }\n\
             \  return *p + acc;\n\
              }\n"
             r r)
      done)

let correlated_branches ~n =
  buf_program (fun b ->
      Buffer.add_string b "int correlated(int x) {\n";
      for i = 0 to n - 1 do
        Buffer.add_string b (Printf.sprintf "  int *p%d = kmalloc(8);\n" i)
      done;
      Buffer.add_string b "  int acc = 0;\n";
      for i = 0 to n - 1 do
        Buffer.add_string b (Printf.sprintf "  if (x) { kfree(p%d); }\n" i);
        Buffer.add_string b (Printf.sprintf "  if (!x) { acc = acc + *p%d; }\n" i)
      done;
      Buffer.add_string b "  return acc;\n}\n")

let kill_workload ~n =
  buf_program (fun b ->
      for i = 0 to n - 1 do
        Buffer.add_string b
          (Printf.sprintf
             "int recycle%d(int *p, int fresh) {\n\
             \  kfree(p);\n\
             \  p = make_buffer(fresh);\n\
             \  return *p;\n\
              }\n"
             i)
      done)

let no_match_heavy ~n_funcs ~stmts =
  buf_program (fun b ->
      Buffer.add_string b "struct pt { int x; int y; };\n";
      for i = 0 to n_funcs - 1 do
        Buffer.add_string b
          (Printf.sprintf "int crunch%d(struct pt *p, int *a, int n) {\n" i);
        Buffer.add_string b "  int acc = n + 1;\n";
        for s = 0 to stmts - 1 do
          match s mod 4 with
          | 0 ->
              Buffer.add_string b
                (Printf.sprintf "  acc = acc + a[%d] * (n - %d);\n" s s)
          | 1 -> Buffer.add_string b (Printf.sprintf "  p->x = p->y + acc + %d;\n" s)
          | 2 ->
              Buffer.add_string b
                (Printf.sprintf "  if (acc > %d) { acc = acc - %d; }\n" (s * 3)
                   (s + 1))
          | _ -> Buffer.add_string b (Printf.sprintf "  a[%d] = acc + p->x;\n" (s mod 7))
        done;
        Buffer.add_string b "  return acc;\n}\n"
      done)

let lock_workload ~n_funcs ~bug_every =
  buf_program (fun b ->
      Buffer.add_string b "struct lk { int held; };\n";
      for i = 0 to n_funcs - 1 do
        let buggy = bug_every > 0 && i mod bug_every = bug_every - 1 in
        Buffer.add_string b
          (Printf.sprintf "int work%d(struct lk *l, int st, int data) {\n" i);
        Buffer.add_string b "  lock(l);\n";
        Buffer.add_string b "  data = data + 1;\n";
        if buggy then
          (* error path: early return without releasing *)
          Buffer.add_string b "  if (st < 0) { return st; }\n"
        else Buffer.add_string b "  if (st < 0) { unlock(l); return st; }\n";
        Buffer.add_string b "  unlock(l);\n";
        Buffer.add_string b "  return data;\n}\n"
      done)
