(** Parametric synthetic programs for the benchmark harness.

    Each generator returns C source text exercising one scaling dimension of
    the engine:

    - {!diamond_chain}: [n] sequential if/else diamonds — [2^n] paths, so it
      separates caching (linear) from naive path DFS (exponential)
      (Section 5.2, claim P2);
    - {!many_tracked}: [n] pointers freed then used — cost must scale
      linearly in the number of tracked instances thanks to SM independence
      (Section 5.2, claim P1);
    - {!call_chain} / {!call_tree}: deep and wide callgraphs with a shared
      helper called from every leaf — function summaries must collapse the
      re-analysis (Section 6.2, claim P3);
    - {!correlated_branches}: [n] pairs of contradictory conditions in the
      style of Figure 2 — false-path pruning kills the false positives
      (Section 8, claim P4). *)

val diamond_chain : n:int -> string
(** One function: a freed pointer flows through [n] diamonds, then is
    dereferenced (one true error). *)

val many_tracked : n:int -> string
(** One function with [n] pointers, each freed then dereferenced
    ([n] true errors). *)

val call_chain : depth:int -> string
(** [f0] calls [f1] calls ... [f_depth]; the leaf frees its argument; the
    root dereferences after the call (one interprocedural error). *)

val call_tree : depth:int -> fanout:int -> string
(** A complete call tree; every leaf calls one shared helper that frees its
    argument. Summary reuse makes this linear in the number of functions. *)

val sched_corpus : n_roots:int -> light:int -> heavy:int -> string
(** The parallel scheduler's stress shape: [n_roots] independent roots,
    each reaching one hot shared leaf ([hub], which frees its argument)
    through a private two-arm diamond, so every root ends in one
    use-after-free report. Private cost is uneven — the mid-list root
    carries [heavy] if/else diamonds, the others [light] — which defeats
    static contiguous chunking (one chunk inherits the whole imbalance)
    while the shared [hub]/mid units must still be analysed exactly once
    fleet-wide. *)

val correlated_branches : n:int -> string
(** [n] Figure-2-style pairs [if (x) { kfree(p_i); } ... if (!x) *p_i]
    — all uses are on infeasible paths (zero true errors; a path-insensitive
    analysis reports [n] false positives). *)

val kill_workload : n:int -> string
(** [n] functions that free a pointer, {e reassign it}, then use it — the
    idiom kill-on-redefinition exists for ("the single most important
    technique for suppressing false positives", Section 8). Zero true
    errors; without the kill analysis every function reports one. *)

val no_match_heavy : n_funcs:int -> stmts:int -> string
(** [n_funcs] functions of [stmts] statements of pure arithmetic, field,
    array and branch traffic — no calls, no pointers any checker tracks,
    zero reports. Every node event is a non-match, so this corpus isolates
    the per-node cost of transition dispatch: the head index and block
    skip sets should make it near-free, while the naive scan pays a full
    pattern walk per transition per node. *)

val lock_workload : n_funcs:int -> bug_every:int -> string
(** Functions acquiring and releasing a lock; every [bug_every]-th function
    forgets the release on an error path. *)
