(** Random systems-code generator with planted, ground-truth bugs.

    Substitutes for the Linux/OpenBSD trees of the paper's evaluation: we
    cannot ship kernels, but we can generate program families whose bug
    population is known exactly, so detection counts and false-positive
    behaviour are measurable and reproducible (fixed seed ⇒ fixed program).

    Generated functions use the same primitive vocabulary the built-in
    checkers recognise ([kmalloc]/[kfree], [lock]/[unlock]/[trylock],
    [cli]/[sti], [get_user_pointer]/[copy_from_user]). *)

type bug_kind =
  | Use_after_free
  | Double_free
  | Missing_unlock
  | Double_lock
  | Null_deref
  | User_pointer_deref
  | Interrupts_left_off

type planted = { in_function : string; kind : bug_kind }

type t = {
  source : string;  (** C source text of one translation unit *)
  planted : planted list;  (** ground truth, in generation order *)
}

val bug_kind_to_string : bug_kind -> string

val checker_of_kind : bug_kind -> string
(** Name (in {!Registry}) of the checker expected to flag the bug. *)

val generate : seed:int -> n_funcs:int -> bug_rate:float -> t
(** Each function draws a scenario (allocation, locking, user-pointer,
    interrupt discipline, helper calls) and, with probability [bug_rate],
    a planted bug of a kind fitting the scenario. *)

val generate_files : seed:int -> n_files:int -> funcs_per_file:int -> bug_rate:float ->
  (string * t) list
(** Multiple translation units (file names paired with contents), for
    cross-file interprocedural analysis. *)

val generate_linked : seed:int -> n_files:int -> funcs_per_file:int -> bug_rate:float ->
  (string * t) list
(** Like {!generate_files}, plus a shared helpers file ([helpers.c]) whose
    releasing/locking helpers are called from the other files — every
    planted use-after-free in the callers is a {e cross-file,
    interprocedural} bug. *)
