(* Hash-consed expression identity.

   The base table assigns a dense integer id to every distinct expression
   key appearing in the program: Supergraph.build inserts every
   subexpression of every CFG event plus an identifier node for every
   declared name (formals, locals, globals), then the table is frozen and
   shared read-only across engine worker domains, like Flat.t.

   Identity is *key* identity: two expressions get the same id exactly
   when their Cast.key_of_expr renderings are equal, in both lookup
   modes. The id-mode fast path never renders for program nodes — a
   per-node eid memo resolves them with one integer hash lookup — and
   renders at most once per distinct synthesized tree (refine/restore
   substitutions), memoised by eid thereafter. The string mode
   (--no-state-ids) deliberately renders the key on every lookup and
   resolves it through the string tables, reproducing the pre-hash-cons
   allocation profile over the *same* id space, so reports are identical
   across modes by construction.

   Overflow ids (expressions absent from the program text) are minted
   from a process-global counter so ids from different contexts never
   collide; they are private to the minting context. *)

type t = {
  by_key : (string, int) Hashtbl.t;  (* rendered key -> id *)
  by_eid : (int, int) Hashtbl.t;  (* program node eid -> id *)
  mutable keys : string array;  (* id -> rendered key *)
  mutable n : int;
}

type ctx = {
  base : t;
  strings : bool;
  o_by_key : (string, int) Hashtbl.t;
  o_by_eid : (int, int) Hashtbl.t;
  o_keys : (int, string) Hashtbl.t;
}

(* Process-global so overflow ids minted by concurrent contexts (one per
   root traversal) are distinct: an id can then be compared for equality
   against any instance it may meet, wherever that instance was made.
   Never compare ids for *order* — overflow minting order is scheduling
   dependent. *)
let overflow_counter = Atomic.make 0

let create () =
  {
    by_key = Hashtbl.create 1024;
    by_eid = Hashtbl.create 4096;
    keys = Array.make 1024 "";
    n = 0;
  }

let n t = t.n
let key_of_base t id = t.keys.(id)

(* Insert one node (not its children): id by rendered key, eid memoised. *)
let insert_node t (e : Cast.expr) =
  match Hashtbl.find_opt t.by_eid e.Cast.eid with
  | Some _ -> ()
  | None ->
      let k = Cast.key_of_expr e in
      let id =
        match Hashtbl.find_opt t.by_key k with
        | Some id -> id
        | None ->
            let id = t.n in
            t.n <- id + 1;
            if id >= Array.length t.keys then begin
              let keys = Array.make (2 * Array.length t.keys) "" in
              Array.blit t.keys 0 keys 0 id;
              t.keys <- keys
            end;
            t.keys.(id) <- k;
            Hashtbl.replace t.by_key k id;
            id
      in
      Hashtbl.replace t.by_eid e.Cast.eid id

let rec insert_tree t e =
  insert_node t e;
  List.iter (insert_tree t) (Cast.children e)

(* A declared name as it appears in instance targets: a bare identifier
   node (fresh, so only its key entry matters — refine/restore and the
   exhaustive baseline retarget instances onto exactly these trees). *)
let insert_name t name = insert_node t (Cast.ident name)

let insert_decl t (d : Cast.decl) =
  insert_name t d.Cast.dname;
  Option.iter (insert_tree t) d.Cast.dinit

let insert_block t (b : Block.t) =
  List.iter
    (function
      | Block.Tree e -> insert_tree t e
      | Block.Decl d -> insert_decl t d
      | Block.End_of_scope _ -> ())
    b.Block.elems;
  match b.Block.term with
  | Block.Branch (e, _, _) | Block.Switch (e, _) | Block.Return (Some e) ->
      insert_tree t e
  | Block.Jump _ | Block.Return None | Block.Exit -> ()

let build ~tunits ~cfgs =
  let t = create () in
  List.iter
    (fun (tu : Cast.tunit) ->
      List.iter
        (function
          | Cast.Gvar { gdecl; _ } -> insert_decl t gdecl
          | Cast.Gfun _ | Cast.Gtypedef _ | Cast.Gcomposite _ | Cast.Genum _
          | Cast.Gproto _ | Cast.Gskipped _ ->
              ())
        tu.Cast.tu_globals)
    tunits;
  List.iter
    (fun (cfg : Cfg.t) ->
      List.iter (fun (p, _) -> insert_name t p) cfg.Cfg.func.Cast.fparams;
      for bid = 0 to Cfg.n_blocks cfg - 1 do
        insert_block t (Cfg.block cfg bid)
      done)
    cfgs;
  t

let empty = create

let make_ctx ?(strings = false) base =
  {
    base;
    strings;
    o_by_key = Hashtbl.create 64;
    o_by_eid = Hashtbl.create 64;
    o_keys = Hashtbl.create 64;
  }

let base ctx = ctx.base
let strings_mode ctx = ctx.strings

let mint ctx k =
  let id = ctx.base.n + Atomic.fetch_and_add overflow_counter 1 in
  Hashtbl.replace ctx.o_by_key k id;
  Hashtbl.replace ctx.o_keys id k;
  id

(* The deliberate A/B baseline: render every time, resolve by string. *)
let id_by_string ctx (e : Cast.expr) =
  let k = Cast.key_of_expr e in
  match Hashtbl.find_opt ctx.base.by_key k with
  | Some id -> id
  | None -> (
      match Hashtbl.find_opt ctx.o_by_key k with
      | Some id -> id
      | None -> mint ctx k)

let id ctx (e : Cast.expr) =
  if ctx.strings then id_by_string ctx e
  else
    match Hashtbl.find_opt ctx.base.by_eid e.Cast.eid with
    | Some id -> id
    | None -> (
        match Hashtbl.find_opt ctx.o_by_eid e.Cast.eid with
        | Some id -> id
        | None ->
            let id = id_by_string ctx e in
            Hashtbl.replace ctx.o_by_eid e.Cast.eid id;
            id)

let find_key ctx id =
  if id < ctx.base.n then Some ctx.base.keys.(id)
  else Hashtbl.find_opt ctx.o_keys id

let key ctx id =
  if id < ctx.base.n then ctx.base.keys.(id)
  else Hashtbl.find ctx.o_keys id

let table_bytes t =
  (* rough live size for the --stats memory line: key bytes + the three
     word-sized table slots per entry *)
  let key_bytes = ref 0 in
  for i = 0 to t.n - 1 do
    key_bytes := !key_bytes + String.length t.keys.(i)
  done;
  !key_bytes + ((Hashtbl.length t.by_key + Hashtbl.length t.by_eid + t.n) * 24)
