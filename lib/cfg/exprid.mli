(** Hash-consed expression identity.

    Every distinct expression key ({!Cast.key_of_expr}) gets a dense
    integer id. The base table is built once in {!Supergraph.build} over
    every subexpression of every CFG event plus an identifier node per
    declared name, then shared read-only across engine worker domains
    (like {!Flat.t}). Per-traversal {!ctx} views layer a private overflow
    table on top for synthesized trees (refine/restore substitutions).

    Identity is key identity: [id ctx a = id ctx b] iff
    [Cast.key_of_expr a = Cast.key_of_expr b], in both modes. Ids are
    equality tokens only — never compare them for order (overflow minting
    order is scheduling-dependent); order observable output by rendered
    {!key} instead. *)

type t
(** The frozen base table (safe to share across domains). *)

type ctx
(** A single-traversal view: base + private overflow. Not thread-safe;
    overflow ids are private to the minting context (an id minted by one
    context is unknown to {!key} in another, though never equal to any id
    that other context mints). *)

val build : tunits:Cast.tunit list -> cfgs:Cfg.t list -> t
val empty : unit -> t

val n : t -> int
(** Number of base ids; base ids are dense in [\[0, n)]. *)

val key_of_base : t -> int -> string
(** Rendered key of a base id (callers with a {!ctx} use {!key}). *)

val table_bytes : t -> int
(** Approximate live size of the base table, for the --stats memory line. *)

val make_ctx : ?strings:bool -> t -> ctx
(** [strings:true] is the [--no-state-ids] A/B baseline: every lookup
    renders the key and resolves through the string tables (the
    pre-hash-cons cost model) over the same id space, so analysis
    behaviour is identical across modes by construction. *)

val base : ctx -> t
val strings_mode : ctx -> bool

val id : ctx -> Cast.expr -> int
(** The id of an expression. Id mode: one integer hash lookup for program
    nodes (eid memo), at most one key rendering per distinct synthesized
    tree. String mode: renders on every call. *)

val key : ctx -> int -> string
(** Rendered key of an id known to this context (base or own overflow).
    The returned string is shared, not rebuilt, per distinct id.
    @raise Not_found on another context's overflow id. *)

val find_key : ctx -> int -> string option
