(** The supergraph: whole-program view combining every function's CFG with
    the callgraph (Section 6).

    The paper builds the supergraph by adding entry/exit nodes per routine
    and splitting callsites into call/return-site node pairs. Our CFGs
    already carry a distinguished entry and exit node; callsite/return-site
    splitting is realised operationally by the engine, which suspends block
    traversal at a call tree and resumes just after it, so the "only
    intraprocedural successor of [cp] is [rp]" invariant holds by
    construction. *)

type t = {
  cfgs : (string, Cfg.t) Hashtbl.t;
  callgraph : Callgraph.t;
  typing : Ctyping.env;
  tunits : Cast.tunit list;
  heads : (string, Block_heads.t array) Hashtbl.t;
      (** per-function, per-block head-constructor summaries, computed
          eagerly at build time (the supergraph is shared immutably across
          engine worker domains) *)
  flat : Flat.t;
      (** flat int-indexed tables over every block of every function —
          dense flat block ids, CSR successors, head masks and
          precomputed per-block event sequences; see {!Flat} *)
  ids : Exprid.t;
      (** hash-consed expression identity: a dense integer id per
          distinct expression key of the program, built eagerly and
          shared read-only across domains; see {!Exprid} *)
}

val build : Cast.tunit list -> t
(** Pass 2 of Section 6: collect every function definition, build CFGs, the
    callgraph, and a global typing environment.

    If the same function name is defined more than once across the input
    units, the first definition (in input order) wins everywhere — CFG
    table and callgraph alike — and a warning naming both locations goes
    to the uniform stderr diagnostics channel ({!Diag.warnf});
    previously later definitions silently replaced earlier ones in the
    CFG table while the callgraph still saw every body.

    {!Cast.Gskipped} stubs left by parser error recovery contribute no
    CFG and no callgraph node — calls to a skipped name are unknown
    calls, the conservative model — and each stub is reported through
    {!Diag.warnf} here, the chokepoint every driver path shares. *)

val cfg_of : t -> string -> Cfg.t option

val heads_of : t -> string -> Block_heads.t array option
(** Block head summaries of a defined function, indexed by block id. *)

val fundef_of : t -> string -> Cast.fundef option
val roots : t -> string list

val file_of_function : t -> string -> string option
(** Which translation unit defines the function (for the file-scope
    refine/restore rules of Section 6.1). *)

val pp : Format.formatter -> t -> unit
