type elem =
  | Tree of Cast.expr
  | Decl of Cast.decl
  | End_of_scope of string list

type terminator =
  | Jump of int
  | Branch of Cast.expr * int * int
  | Switch of Cast.expr * (int64 option * int) list
  | Return of Cast.expr option
  | Exit

type t = {
  bid : int;
  mutable elems : elem list;
  mutable term : terminator;
  mutable havoc : string list;
  mutable bloc : Srcloc.t;
}

let pp_elem ppf = function
  | Tree e -> Format.fprintf ppf "%a;" Cprint.pp_expr e
  | Decl d -> (
      Format.fprintf ppf "%a %s" Ctyp.pp d.Cast.dtyp d.Cast.dname;
      match d.Cast.dinit with
      | None -> Format.fprintf ppf ";"
      | Some e -> Format.fprintf ppf " = %a;" Cprint.pp_expr e)
  | End_of_scope vars ->
      Format.fprintf ppf "/* end of scope: %s */" (String.concat ", " vars)

let pp_terminator ppf = function
  | Jump b -> Format.fprintf ppf "goto B%d" b
  | Branch (c, t, f) -> Format.fprintf ppf "if (%a) B%d else B%d" Cprint.pp_expr c t f
  | Switch (e, arms) ->
      Format.fprintf ppf "switch (%a):" Cprint.pp_expr e;
      List.iter
        (fun (g, b) ->
          match g with
          | None -> Format.fprintf ppf " default->B%d" b
          | Some v -> Format.fprintf ppf " %Ld->B%d" v b)
        arms
  | Return None -> Format.fprintf ppf "return"
  | Return (Some e) -> Format.fprintf ppf "return %a" Cprint.pp_expr e
  | Exit -> Format.fprintf ppf "exit"

let pp ppf b =
  Format.fprintf ppf "@[<v 2>B%d:" b.bid;
  if b.havoc <> [] then
    Format.fprintf ppf "@ /* havoc: %s */" (String.concat ", " b.havoc);
  List.iter (fun e -> Format.fprintf ppf "@ %a" pp_elem e) b.elems;
  Format.fprintf ppf "@ %a@]" pp_terminator b.term

let successors b =
  match b.term with
  | Jump x -> [ x ]
  | Branch (_, t, f) -> if t = f then [ t ] else [ t; f ]
  | Switch (_, arms) -> List.sort_uniq Int.compare (List.map snd arms)
  | Return _ | Exit -> []
