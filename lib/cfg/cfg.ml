type t = {
  fname : string;
  entry : int;
  exit_ : int;
  blocks : Block.t array;
  func : Cast.fundef;
}

(* ------------------------------------------------------------------ *)
(* Builder state                                                       *)
(* ------------------------------------------------------------------ *)

type builder = {
  mutable blocks : Block.t list;  (* reverse order *)
  mutable n : int;
  labels : (string, int) Hashtbl.t;
  mutable breaks : int list;  (* stack of break targets *)
  mutable continues : int list;  (* stack of continue targets *)
  exit_id : int ref;
}

let new_block ?(loc = Srcloc.dummy) bld =
  let b =
    { Block.bid = bld.n; elems = []; term = Block.Exit; havoc = []; bloc = loc }
  in
  bld.n <- bld.n + 1;
  bld.blocks <- b :: bld.blocks;
  b

let get_block bld id = List.find (fun (b : Block.t) -> b.bid = id) bld.blocks
let add_elem (b : Block.t) e = b.elems <- b.elems @ [ e ]

let label_block bld name =
  match Hashtbl.find_opt bld.labels name with
  | Some id -> id
  | None ->
      let b = new_block bld in
      Hashtbl.replace bld.labels name b.Block.bid;
      b.Block.bid

(* Variables assigned within a statement (for loop havoc). *)
let rec assigned_vars_expr acc (e : Cast.expr) =
  let acc =
    match e.enode with
    | Cast.Eassign (_, l, _) -> (
        match Cast.base_lvalue l with
        | Some { enode = Cast.Eident x; _ } -> x :: acc
        | _ -> acc)
    | Cast.Eunary ((Cast.Preinc | Cast.Predec | Cast.Postinc | Cast.Postdec), l) -> (
        match Cast.base_lvalue l with
        | Some { enode = Cast.Eident x; _ } -> x :: acc
        | _ -> acc)
    | _ -> acc
  in
  List.fold_left assigned_vars_expr acc
    (match e.enode with
    | Cast.Eunary (_, e1)
    | Cast.Ecast (_, e1)
    | Cast.Esizeof_expr e1
    | Cast.Efield (e1, _)
    | Cast.Earrow (e1, _) ->
        [ e1 ]
    | Cast.Ebinary (_, l, r)
    | Cast.Eassign (_, l, r)
    | Cast.Eindex (l, r)
    | Cast.Ecomma (l, r) ->
        [ l; r ]
    | Cast.Econd (c, t, f) -> [ c; t; f ]
    | Cast.Ecall (f, args) -> f :: args
    | Cast.Einit_list es -> es
    | Cast.Eint _ | Cast.Efloat _ | Cast.Echar _ | Cast.Estr _ | Cast.Eident _
    | Cast.Esizeof_type _ ->
        [])

let rec assigned_vars_stmt acc (s : Cast.stmt) =
  match s.snode with
  | Cast.Sexpr e -> assigned_vars_expr acc e
  | Cast.Sdecl ds ->
      List.fold_left
        (fun acc (d : Cast.decl) ->
          let acc = d.dname :: acc in
          match d.dinit with Some e -> assigned_vars_expr acc e | None -> acc)
        acc ds
  | Cast.Sif (c, t, e) ->
      let acc = assigned_vars_expr acc c in
      let acc = assigned_vars_stmt acc t in
      Option.fold ~none:acc ~some:(assigned_vars_stmt acc) e
  | Cast.Swhile (c, b) -> assigned_vars_stmt (assigned_vars_expr acc c) b
  | Cast.Sdo (b, c) -> assigned_vars_expr (assigned_vars_stmt acc b) c
  | Cast.Sfor (init, c, step, b) ->
      let acc = Option.fold ~none:acc ~some:(assigned_vars_stmt acc) init in
      let acc = Option.fold ~none:acc ~some:(assigned_vars_expr acc) c in
      let acc = Option.fold ~none:acc ~some:(assigned_vars_expr acc) step in
      assigned_vars_stmt acc b
  | Cast.Sreturn (Some e) -> assigned_vars_expr acc e
  | Cast.Sblock ss -> List.fold_left assigned_vars_stmt acc ss
  | Cast.Sswitch (e, cases) ->
      let acc = assigned_vars_expr acc e in
      List.fold_left
        (fun acc (c : Cast.case) -> List.fold_left assigned_vars_stmt acc c.case_body)
        acc cases
  | Cast.Slabel (_, s) -> assigned_vars_stmt acc s
  | Cast.Sreturn None | Cast.Sbreak | Cast.Scontinue | Cast.Sgoto _ | Cast.Snull -> acc

(* ------------------------------------------------------------------ *)
(* Lowering                                                            *)
(* ------------------------------------------------------------------ *)

(* Lower a branch condition with short-circuit expansion. [cur] is the block
   in which evaluation of [cond] starts; its terminator is set. *)
let rec lower_cond bld (cur : Block.t) (cond : Cast.expr) tdest fdest =
  match cond.enode with
  | Cast.Ebinary (Cast.Land, a, b) ->
      let bblk = new_block ~loc:b.eloc bld in
      lower_cond bld cur a bblk.Block.bid fdest;
      lower_cond bld bblk b tdest fdest
  | Cast.Ebinary (Cast.Lor, a, b) ->
      let bblk = new_block ~loc:b.eloc bld in
      lower_cond bld cur a tdest bblk.Block.bid;
      lower_cond bld bblk b tdest fdest
  | Cast.Eunary (Cast.Lognot, e) -> lower_cond bld cur e fdest tdest
  | _ -> cur.Block.term <- Block.Branch (cond, tdest, fdest)

(* Lower [s] starting in block [cur]; return the block where control
   continues, or [None] when control never falls through. *)
let rec lower_stmt bld (cur : Block.t option) (s : Cast.stmt) : Block.t option =
  match cur with
  | None -> (
      (* unreachable code after return/break: still lower labels inside *)
      match s.snode with
      | Cast.Slabel (name, body) ->
          let id = label_block bld name in
          let b = get_block bld id in
          b.Block.bloc <- s.sloc;
          lower_stmt bld (Some b) body
      | Cast.Sblock ss -> List.fold_left (lower_stmt bld) None ss
      | _ -> None)
  | Some cur -> (
      match s.snode with
      | Cast.Snull -> Some cur
      | Cast.Sexpr e ->
          add_elem cur (Block.Tree e);
          Some cur
      | Cast.Sdecl ds ->
          List.iter (fun d -> add_elem cur (Block.Decl d)) ds;
          Some cur
      | Cast.Sblock ss -> List.fold_left (lower_stmt bld) (Some cur) ss
      | Cast.Sif (c, t, e) ->
          let tblk = new_block ~loc:t.sloc bld in
          let join = new_block bld in
          let fblk =
            match e with
            | None -> join
            | Some es -> new_block ~loc:es.sloc bld
          in
          lower_cond bld cur c tblk.Block.bid fblk.Block.bid;
          (match lower_stmt bld (Some tblk) t with
          | Some last -> last.Block.term <- Block.Jump join.Block.bid
          | None -> ());
          (match e with
          | None -> ()
          | Some es -> (
              match lower_stmt bld (Some fblk) es with
              | Some last -> last.Block.term <- Block.Jump join.Block.bid
              | None -> ()));
          Some join
      | Cast.Swhile (c, body) ->
          let header = new_block ~loc:s.sloc bld in
          let bodyb = new_block ~loc:body.sloc bld in
          let join = new_block bld in
          header.Block.havoc <- List.sort_uniq String.compare (assigned_vars_stmt [] body);
          cur.Block.term <- Block.Jump header.Block.bid;
          lower_cond bld header c bodyb.Block.bid join.Block.bid;
          bld.breaks <- join.Block.bid :: bld.breaks;
          bld.continues <- header.Block.bid :: bld.continues;
          (match lower_stmt bld (Some bodyb) body with
          | Some last -> last.Block.term <- Block.Jump header.Block.bid
          | None -> ());
          bld.breaks <- List.tl bld.breaks;
          bld.continues <- List.tl bld.continues;
          Some join
      | Cast.Sdo (body, c) ->
          let bodyb = new_block ~loc:body.sloc bld in
          let condb = new_block bld in
          let join = new_block bld in
          bodyb.Block.havoc <- List.sort_uniq String.compare (assigned_vars_stmt [] body);
          cur.Block.term <- Block.Jump bodyb.Block.bid;
          bld.breaks <- join.Block.bid :: bld.breaks;
          bld.continues <- condb.Block.bid :: bld.continues;
          (match lower_stmt bld (Some bodyb) body with
          | Some last -> last.Block.term <- Block.Jump condb.Block.bid
          | None -> ());
          bld.breaks <- List.tl bld.breaks;
          bld.continues <- List.tl bld.continues;
          lower_cond bld condb c bodyb.Block.bid join.Block.bid;
          Some join
      | Cast.Sfor (init, c, step, body) ->
          let cur =
            match init with
            | None -> cur
            | Some init -> (
                match lower_stmt bld (Some cur) init with
                | Some b -> b
                | None -> cur)
          in
          let header = new_block ~loc:s.sloc bld in
          let bodyb = new_block ~loc:body.sloc bld in
          let stepb = new_block bld in
          let join = new_block bld in
          let havoc =
            let acc = assigned_vars_stmt [] body in
            let acc = Option.fold ~none:acc ~some:(assigned_vars_expr acc) step in
            List.sort_uniq String.compare acc
          in
          header.Block.havoc <- havoc;
          cur.Block.term <- Block.Jump header.Block.bid;
          (match c with
          | None -> header.Block.term <- Block.Jump bodyb.Block.bid
          | Some c -> lower_cond bld header c bodyb.Block.bid join.Block.bid);
          bld.breaks <- join.Block.bid :: bld.breaks;
          bld.continues <- stepb.Block.bid :: bld.continues;
          (match lower_stmt bld (Some bodyb) body with
          | Some last -> last.Block.term <- Block.Jump stepb.Block.bid
          | None -> ());
          bld.breaks <- List.tl bld.breaks;
          bld.continues <- List.tl bld.continues;
          (match step with Some e -> add_elem stepb (Block.Tree e) | None -> ());
          stepb.Block.term <- Block.Jump header.Block.bid;
          Some join
      | Cast.Sreturn e ->
          cur.Block.term <- Block.Return e;
          None
      | Cast.Sbreak ->
          (match bld.breaks with
          | target :: _ -> cur.Block.term <- Block.Jump target
          | [] -> ());
          None
      | Cast.Scontinue ->
          (match bld.continues with
          | target :: _ -> cur.Block.term <- Block.Jump target
          | [] -> ());
          None
      | Cast.Sgoto name ->
          cur.Block.term <- Block.Jump (label_block bld name);
          None
      | Cast.Slabel (name, body) ->
          let id = label_block bld name in
          let lblk = get_block bld id in
          lblk.Block.bloc <- s.sloc;
          cur.Block.term <- Block.Jump id;
          lower_stmt bld (Some lblk) body
      | Cast.Sswitch (e, cases) ->
          let join = new_block bld in
          let arm_blocks =
            List.map (fun (c : Cast.case) -> (c, new_block bld)) cases
          in
          let arms =
            List.map (fun ((c : Cast.case), b) -> (c.case_guard, b.Block.bid)) arm_blocks
          in
          let arms =
            if List.exists (fun (g, _) -> g = None) arms then arms
            else arms @ [ (None, join.Block.bid) ]
          in
          cur.Block.term <- Block.Switch (e, arms);
          bld.breaks <- join.Block.bid :: bld.breaks;
          let rec lower_arms = function
            | [] -> ()
            | ((c : Cast.case), (b : Block.t)) :: rest ->
                let last =
                  List.fold_left (lower_stmt bld) (Some b) c.case_body
                in
                (match last with
                | Some lastb ->
                    (* fallthrough to the next arm, or to the join *)
                    let target =
                      match rest with
                      | (_, nb) :: _ -> nb.Block.bid
                      | [] -> join.Block.bid
                    in
                    lastb.Block.term <- Block.Jump target
                | None -> ());
                lower_arms rest
          in
          lower_arms arm_blocks;
          bld.breaks <- List.tl bld.breaks;
          Some join)

let locals_of (f : Cast.fundef) =
  let rec go acc (s : Cast.stmt) =
    match s.snode with
    | Cast.Sdecl ds ->
        List.fold_left (fun acc (d : Cast.decl) -> (d.dname, d.dtyp) :: acc) acc ds
    | Cast.Sif (_, t, e) ->
        let acc = go acc t in
        Option.fold ~none:acc ~some:(go acc) e
    | Cast.Swhile (_, b) | Cast.Sdo (b, _) | Cast.Slabel (_, b) -> go acc b
    | Cast.Sfor (init, _, _, b) ->
        let acc = Option.fold ~none:acc ~some:(go acc) init in
        go acc b
    | Cast.Sblock ss -> List.fold_left go acc ss
    | Cast.Sswitch (_, cases) ->
        List.fold_left
          (fun acc (c : Cast.case) -> List.fold_left go acc c.case_body)
          acc cases
    | Cast.Sexpr _ | Cast.Sreturn _ | Cast.Sbreak | Cast.Scontinue | Cast.Sgoto _
    | Cast.Snull ->
        acc
  in
  go [] f.fbody

let of_fundef (f : Cast.fundef) =
  let bld =
    {
      blocks = [];
      n = 0;
      labels = Hashtbl.create 8;
      breaks = [];
      continues = [];
      exit_id = ref (-1);
    }
  in
  let entry = new_block ~loc:f.floc bld in
  let last = lower_stmt bld (Some entry) f.fbody in
  (* single exit node ep *)
  let exit_b = new_block bld in
  bld.exit_id := exit_b.Block.bid;
  (* only true locals: parameters may map back to caller scope, so their
     permanent scope exit is the engine's responsibility (root exit) *)
  let locals = List.map fst (locals_of f) in
  exit_b.Block.elems <- [ Block.End_of_scope (List.sort_uniq String.compare locals) ];
  exit_b.Block.term <- Block.Exit;
  (match last with
  | Some b -> b.Block.term <- Block.Return None
  | None -> ());
  (* Return terminators remain; [successors] maps them to the exit node. *)
  let blocks = Array.of_list (List.rev bld.blocks) in
  Array.sort (fun (a : Block.t) b -> Int.compare a.bid b.bid) blocks;
  { fname = f.fname; entry = entry.Block.bid; exit_ = exit_b.Block.bid; blocks; func = f }

let block (cfg : t) id = cfg.blocks.(id)
let n_blocks (cfg : t) = Array.length cfg.blocks

let successors cfg id =
  match (block cfg id).Block.term with
  | Block.Return _ -> [ cfg.exit_ ]
  | t -> (
      match t with
      | Block.Jump x -> [ x ]
      | Block.Branch (_, a, b) -> if a = b then [ a ] else [ a; b ]
      | Block.Switch (_, arms) -> List.sort_uniq Int.compare (List.map snd arms)
      | Block.Return _ | Block.Exit -> [])

let find_blocks (cfg : t) pred = List.filter pred (Array.to_list cfg.blocks)

let pp ppf (cfg : t) =
  Format.fprintf ppf "@[<v>function %s (entry B%d, exit B%d)" cfg.fname cfg.entry
    cfg.exit_;
  Array.iter (fun b -> Format.fprintf ppf "@ %a" Block.pp b) cfg.blocks;
  Format.fprintf ppf "@]"
