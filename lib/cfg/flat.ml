(* Flat, int-indexed supergraph tables for the traversal hot path.

   [Supergraph.build] lowers every function to a [Cfg.t] of dense per-
   function block ids; this module assigns every block of every function
   one dense *flat* id ([block_base.(fidx) + bid]) and stores what the
   engine touches on every block visit in contiguous arrays indexed by
   that id:

   - successor lists in CSR form ([succ_off]/[succ], a Bigarray so the
     table is one unboxed slab), replicating [Cfg.successors] exactly
     (Return flows to the exit node, Branch with equal arms dedups,
     Switch targets sorted and deduped);
   - head-constructor summaries ([head_mask] plus a callee-name CSR),
     the same data as {!Block_heads.of_cfg} — dispatch builds its
     per-block skip sets from these without a string-keyed lookup;
   - the block's node-event sequence ([events]), precomputed once
     globally instead of once per root context: the engine used to
     rebuild each block's event list (and re-synthesise declaration-
     initialiser assignments) behind a [sprintf]-keyed cache in every
     root, which was a measurable share of per-run allocation;
   - terminator annotations ([annots]): the [mc_branch]/[mc_return]
     tags the engine lays down when it first materialises a block's
     events. They are recorded here and applied by the engine on the
     first visit per root context (tracked by a per-context bitset), so
     annotation timing matches the per-root cache it replaces.

   Everything here is immutable after [build] and shared read-only
   across engine worker domains, like the rest of the supergraph. *)

(* Must stay in lockstep with the engine's event generation (the engine
   aliases this type): a declaration with an initialiser is visited as a
   fresh-variable event followed by the nodes of a synthesised assignment
   [x = init]; branch conditions, switch scrutinees and returned
   expressions are visited like any block element. *)
type ev =
  | Ev_node of Cast.expr
  | Ev_fresh of string
  | Ev_scope_end of string list

type ba_int = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  fnames : string array;  (* fidx -> function name, input order *)
  fidx_of : (string, int) Hashtbl.t;
  block_base : int array;  (* length nf+1: flat id of fidx's block 0 *)
  entry : int array;  (* fidx -> flat id of the entry block *)
  exit_ : int array;  (* fidx -> flat id of the exit block *)
  n_blocks : int;
  succ_off : int array;  (* length n_blocks+1 *)
  succ : ba_int;  (* flat successor ids, CSR *)
  head_mask : int array;  (* Block_heads shape bitmask per flat block *)
  call_off : int array;  (* length n_blocks+1 *)
  call_names : string array;  (* sorted distinct callee names, CSR *)
  events : ev array array;  (* flat id -> node events, execution order *)
  annots : (Cast.expr * string) array array;
      (* flat id -> terminator annotations to lay down on first visit *)
}

(* Mirrors [Block_heads.of_block]'s walk and the engine's event builder:
   one pass computes both the event array and the terminator annotations
   so they cannot drift apart. *)
let events_of_block (b : Block.t) =
  let of_elem = function
    | Block.Tree e -> List.map (fun n -> Ev_node n) (Cast.exec_order e)
    | Block.Decl d -> (
        match d.Cast.dinit with
        | Some init ->
            let synth =
              Cast.mk_expr ~loc:init.eloc
                (Cast.Eassign (None, Cast.ident ~loc:init.eloc d.Cast.dname, init))
            in
            Ev_fresh d.Cast.dname
            :: List.map (fun n -> Ev_node n) (Cast.exec_order synth)
        | None -> [ Ev_fresh d.Cast.dname ])
    | Block.End_of_scope vars -> [ Ev_scope_end vars ]
  in
  let term_evs, annots =
    match b.Block.term with
    | Block.Branch (c, _, _) ->
        (List.map (fun n -> Ev_node n) (Cast.exec_order c), [ (c, "mc_branch") ])
    | Block.Switch (e, _) ->
        (List.map (fun n -> Ev_node n) (Cast.exec_order e), [ (e, "mc_branch") ])
    | Block.Return (Some e) ->
        (List.map (fun n -> Ev_node n) (Cast.exec_order e), [ (e, "mc_return") ])
    | Block.Jump _ | Block.Return None | Block.Exit -> ([], [])
  in
  ( Array.of_list (List.concat_map of_elem b.Block.elems @ term_evs),
    Array.of_list annots )

let build (cfgs : Cfg.t list) : t =
  let cfgs = Array.of_list cfgs in
  let nf = Array.length cfgs in
  let fnames = Array.map (fun (c : Cfg.t) -> c.Cfg.fname) cfgs in
  let fidx_of = Hashtbl.create (max 16 nf) in
  Array.iteri (fun i name -> Hashtbl.replace fidx_of name i) fnames;
  let block_base = Array.make (nf + 1) 0 in
  for i = 0 to nf - 1 do
    block_base.(i + 1) <- block_base.(i) + Cfg.n_blocks cfgs.(i)
  done;
  let n_blocks = block_base.(nf) in
  let entry = Array.make nf 0 and exit_ = Array.make nf 0 in
  let succ_off = Array.make (n_blocks + 1) 0 in
  let head_mask = Array.make n_blocks 0 in
  let call_off = Array.make (n_blocks + 1) 0 in
  let events = Array.make n_blocks [||] in
  let annots = Array.make n_blocks [||] in
  (* first pass: per-block successor/call counts, heads, events *)
  let succs : int list array = Array.make n_blocks [] in
  let calls : string list array = Array.make n_blocks [] in
  Array.iteri
    (fun fi (cfg : Cfg.t) ->
      let base = block_base.(fi) in
      entry.(fi) <- base + cfg.Cfg.entry;
      exit_.(fi) <- base + cfg.Cfg.exit_;
      Array.iter
        (fun (b : Block.t) ->
          let fb = base + b.Block.bid in
          let ss = Cfg.successors cfg b.Block.bid in
          succs.(fb) <- List.map (fun s -> base + s) ss;
          let h = Block_heads.of_block b in
          head_mask.(fb) <- h.Block_heads.mask;
          calls.(fb) <- h.Block_heads.calls;
          let evs, ans = events_of_block b in
          events.(fb) <- evs;
          annots.(fb) <- ans)
        cfg.Cfg.blocks)
    cfgs;
  for fb = 0 to n_blocks - 1 do
    succ_off.(fb + 1) <- succ_off.(fb) + List.length succs.(fb);
    call_off.(fb + 1) <- call_off.(fb) + List.length calls.(fb)
  done;
  let succ =
    Bigarray.Array1.create Bigarray.int Bigarray.c_layout
      (max 1 succ_off.(n_blocks))
  in
  let call_names = Array.make (max 1 call_off.(n_blocks)) "" in
  for fb = 0 to n_blocks - 1 do
    List.iteri (fun i s -> succ.{succ_off.(fb) + i} <- s) succs.(fb);
    List.iteri (fun i c -> call_names.(call_off.(fb) + i) <- c) calls.(fb)
  done;
  {
    fnames;
    fidx_of;
    block_base;
    entry;
    exit_;
    n_blocks;
    succ_off;
    succ;
    head_mask;
    call_off;
    call_names;
    events;
    annots;
  }

let n_functions t = Array.length t.fnames
let fidx t name = Hashtbl.find_opt t.fidx_of name

let fbase t name =
  match Hashtbl.find_opt t.fidx_of name with
  | Some i -> t.block_base.(i)
  | None -> -1

(* The function owning flat id [fb]: greatest fidx with base <= fb. *)
let fidx_of_flat t fb =
  let lo = ref 0 and hi = ref (n_functions t - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if t.block_base.(mid) <= fb then lo := mid else hi := mid - 1
  done;
  !lo

let unflatten t fb =
  let fi = fidx_of_flat t fb in
  (t.fnames.(fi), fb - t.block_base.(fi))

let successors t fb =
  List.init (t.succ_off.(fb + 1) - t.succ_off.(fb)) (fun i ->
      t.succ.{t.succ_off.(fb) + i})

let calls t fb =
  Array.to_list (Array.sub t.call_names t.call_off.(fb) (t.call_off.(fb + 1) - t.call_off.(fb)))

let events t fb = t.events.(fb)
let annots t fb = t.annots.(fb)

(* Approximate size of the flat tables themselves (not the AST nodes the
   event arrays point into), for the [--stats] memory line. *)
let table_bytes t =
  let word = Sys.word_size / 8 in
  let arr_words n = n + 1 (* header *) in
  let words =
    arr_words (Array.length t.fnames)
    + arr_words (Array.length t.block_base)
    + arr_words (Array.length t.entry)
    + arr_words (Array.length t.exit_)
    + arr_words (Array.length t.succ_off)
    + arr_words (Array.length t.head_mask)
    + arr_words (Array.length t.call_off)
    + arr_words (Array.length t.call_names)
    + arr_words (Array.length t.events)
    + arr_words (Array.length t.annots)
    + Array.fold_left (fun acc evs -> acc + arr_words (Array.length evs)) 0 t.events
    + Array.fold_left
        (fun acc ans -> acc + arr_words (Array.length ans) + (3 * Array.length ans))
        0 t.annots
  in
  (words * word) + (Bigarray.Array1.dim t.succ * word)
