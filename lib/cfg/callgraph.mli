(** Callgraph over defined functions (Section 6, preprocessing pass 2).

    "Functions with no callers are considered roots. When computing roots,
    recursive call chains are broken arbitrarily": after taking all
    caller-less functions as roots, any function still unreachable (because
    it only appears in call cycles) donates one representative per cycle as
    an extra root. *)

type t

val build : Cast.fundef list -> t

val callees : t -> string -> string list
(** Distinct names of defined functions called from the body (call order,
    deduplicated). *)

val callers : t -> string -> string list
val roots : t -> string list
val is_defined : t -> string -> bool
val functions : t -> string list

val in_cycle : t -> string -> bool
(** Whether the function participates in a recursive call chain. *)

val acyclic_heights : t -> string -> int option
(** [acyclic_heights t] precomputes, for every defined function, the
    longest chain of calls below it: [Some 0] for a function that calls
    no defined function, [Some (1 + max over callees)] otherwise, and
    [None] when the function's transitive callee closure touches a
    recursive cycle (no finite height exists). Heights order the
    callgraph bottom-up — a scheduler that runs low heights first
    computes every shared callee's summary before tall callers demand
    it — and bound how deep a traversal entered at the function can
    recurse, which is what lets the engine decide depth-cap safety for
    a context-free shared summary. Returns [None] for undefined names. *)

val closure_hashes : t -> body_hash:(string -> Fingerprint.t) -> string -> Fingerprint.t
(** [closure_hashes t ~body_hash] precomputes, for every defined function,
    a fingerprint over its transitive callee closure (itself included):
    the combined [(name, body_hash name)] pairs of every reachable callee,
    in sorted name order. Editing a leaf callee therefore changes exactly
    the hashes of that function and its transitive callers — the
    invalidation rule of the persistent summary cache. The returned lookup
    falls back to the function's own pair for undefined names. *)

val pp : Format.formatter -> t -> unit
