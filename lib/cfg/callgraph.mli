(** Callgraph over defined functions (Section 6, preprocessing pass 2).

    "Functions with no callers are considered roots. When computing roots,
    recursive call chains are broken arbitrarily": after taking all
    caller-less functions as roots, any function still unreachable (because
    it only appears in call cycles) donates one representative per cycle as
    an extra root. *)

type t

val build : Cast.fundef list -> t

val callees : t -> string -> string list
(** Distinct names of defined functions called from the body (call order,
    deduplicated). *)

val callers : t -> string -> string list
val roots : t -> string list
val is_defined : t -> string -> bool
val functions : t -> string list

val in_cycle : t -> string -> bool
(** Whether the function participates in a recursive call chain. *)

val acyclic_heights : t -> string -> int option
(** [acyclic_heights t] precomputes, for every defined function, the
    longest chain of calls below it: [Some 0] for a function that calls
    no defined function, [Some (1 + max over callees)] otherwise, and
    [None] when the function's transitive callee closure touches a
    recursive cycle (no finite height exists). Heights order the
    callgraph bottom-up — a scheduler that runs low heights first
    computes every shared callee's summary before tall callers demand
    it — and bound how deep a traversal entered at the function can
    recurse, which is what lets the engine decide depth-cap safety for
    a context-free shared summary. Returns [None] for undefined names. *)

val closures : t -> string -> string list
(** [closures t] precomputes, for every defined function, its transitive
    callee closure (itself included) in sorted name order — the set of
    functions whose behaviour a traversal entered at it can observe.
    The persistent summary cache folds a fingerprint per closure member
    into each cache key, so editing a member invalidates exactly the
    member and its transitive callers. The returned lookup falls back to
    the singleton [[f]] for undefined names. *)

val pp : Format.formatter -> t -> unit
