(* Per-block head-constructor summaries for transition dispatch.

   The engine visits every subexpression of every block element in
   execution order, so the set of node events a block can ever produce is
   a static property of the block. [of_block] folds the root constructor
   ("head") of each such node into a compact summary: a shape bitmask plus
   the set of known callee names. Dispatch compares an extension's
   pattern-root requirements against the summary to decide whether the
   block can fire anything at all.

   The walk below must mirror [Engine.events_of_block] exactly: a
   declaration with an initialiser synthesises [x = init], so its summary
   contributes the initialiser's subtrees plus an identifier node and an
   assignment node; branch conditions, switch scrutinees and returned
   expressions are visited too. *)

type shape =
  | Sassign
  | Sderef
  | Sunary
  | Sbinary
  | Scast
  | Scond
  | Scomma
  | Sfield
  | Sarrow
  | Sindex
  | Sident
  | Slit
  | Ssizeof
  | Sinit
  | Scall_other  (** call through a computed callee expression *)

let shape_code = function
  | Sassign -> 0
  | Sderef -> 1
  | Sunary -> 2
  | Sbinary -> 3
  | Scast -> 4
  | Scond -> 5
  | Scomma -> 6
  | Sfield -> 7
  | Sarrow -> 8
  | Sindex -> 9
  | Sident -> 10
  | Slit -> 11
  | Ssizeof -> 12
  | Sinit -> 13
  | Scall_other -> 14

let n_shapes = 15

let all_shapes =
  [
    Sassign; Sderef; Sunary; Sbinary; Scast; Scond; Scomma; Sfield; Sarrow;
    Sindex; Sident; Slit; Ssizeof; Sinit; Scall_other;
  ]

let shape_name = function
  | Sassign -> "assign"
  | Sderef -> "deref"
  | Sunary -> "unary"
  | Sbinary -> "binary"
  | Scast -> "cast"
  | Scond -> "cond"
  | Scomma -> "comma"
  | Sfield -> "field"
  | Sarrow -> "arrow"
  | Sindex -> "index"
  | Sident -> "ident"
  | Slit -> "lit"
  | Ssizeof -> "sizeof"
  | Sinit -> "init"
  | Scall_other -> "call*"

type head = Named_call of string | Shape of shape

let head_of (e : Cast.expr) =
  match e.enode with
  | Cast.Ecall ({ enode = Cast.Eident f; _ }, _) -> Named_call f
  | Cast.Ecall _ -> Shape Scall_other
  | Cast.Eassign _ -> Shape Sassign
  | Cast.Eunary (Cast.Deref, _) -> Shape Sderef
  | Cast.Eunary _ -> Shape Sunary
  | Cast.Ebinary _ -> Shape Sbinary
  | Cast.Ecast _ -> Shape Scast
  | Cast.Econd _ -> Shape Scond
  | Cast.Ecomma _ -> Shape Scomma
  | Cast.Efield _ -> Shape Sfield
  | Cast.Earrow _ -> Shape Sarrow
  | Cast.Eindex _ -> Shape Sindex
  | Cast.Eident _ -> Shape Sident
  | Cast.Eint _ | Cast.Efloat _ | Cast.Echar _ | Cast.Estr _ -> Shape Slit
  | Cast.Esizeof_type _ | Cast.Esizeof_expr _ -> Shape Ssizeof
  | Cast.Einit_list _ -> Shape Sinit

(* Allocation-free variant of [head_of] for the per-node dispatch hot
   path: returns the shape code directly. Any call — named or computed —
   maps to [Scall_other]; callers that care about the callee name match
   [Ecall (Eident f, _)] themselves before falling back here. *)
let shape_code_of (e : Cast.expr) =
  match e.enode with
  | Cast.Ecall _ -> 14 (* Scall_other *)
  | Cast.Eassign _ -> 0
  | Cast.Eunary (Cast.Deref, _) -> 1
  | Cast.Eunary _ -> 2
  | Cast.Ebinary _ -> 3
  | Cast.Ecast _ -> 4
  | Cast.Econd _ -> 5
  | Cast.Ecomma _ -> 6
  | Cast.Efield _ -> 7
  | Cast.Earrow _ -> 8
  | Cast.Eindex _ -> 9
  | Cast.Eident _ -> 10
  | Cast.Eint _ | Cast.Efloat _ | Cast.Echar _ | Cast.Estr _ -> 11
  | Cast.Esizeof_type _ | Cast.Esizeof_expr _ -> 12
  | Cast.Einit_list _ -> 13

type t = { mask : int; calls : string list }

let empty = { mask = 0; calls = [] }
let has_shape t s = t.mask land (1 lsl shape_code s) <> 0
let has_call t = t.calls <> [] || has_shape t Scall_other

module Sset = Set.Make (String)

type acc = { mutable a_mask : int; mutable a_calls : Sset.t }

let add_expr acc e =
  List.iter
    (fun n ->
      match head_of n with
      | Named_call f -> acc.a_calls <- Sset.add f acc.a_calls
      | Shape s -> acc.a_mask <- acc.a_mask lor (1 lsl shape_code s))
    (Cast.exec_order e)

let of_block (b : Block.t) =
  let acc = { a_mask = 0; a_calls = Sset.empty } in
  List.iter
    (function
      | Block.Tree e -> add_expr acc e
      | Block.Decl d -> (
          match d.Cast.dinit with
          | Some init ->
              (* the engine synthesises [dname = init] *)
              add_expr acc init;
              acc.a_mask <-
                acc.a_mask
                lor (1 lsl shape_code Sident)
                lor (1 lsl shape_code Sassign)
          | None -> ())
      | Block.End_of_scope _ -> ())
    b.Block.elems;
  (match b.Block.term with
  | Block.Branch (c, _, _) -> add_expr acc c
  | Block.Switch (e, _) -> add_expr acc e
  | Block.Return (Some e) -> add_expr acc e
  | Block.Jump _ | Block.Return None | Block.Exit -> ());
  { mask = acc.a_mask; calls = Sset.elements acc.a_calls }

let of_cfg (cfg : Cfg.t) = Array.map of_block cfg.Cfg.blocks

let pp ppf t =
  let shapes = List.filter (fun s -> has_shape t s) all_shapes in
  Format.fprintf ppf "{shapes=%s; calls=%s}"
    (String.concat "," (List.map shape_name shapes))
    (String.concat "," t.calls)
