(** Per-block head-constructor summaries for transition dispatch.

    Every node event a block can produce is statically known (the engine
    visits block elements' subexpressions in execution order), so each
    block gets a compact summary of the root constructors that appear in
    it: a bitmask over non-call shapes plus the set of known callee names.
    The dispatch layer ({!module:Dispatch} in the engine library) compares
    an extension's pattern-root requirements against these summaries to
    skip blocks that cannot fire any transition.

    The summary must stay in lockstep with the engine's event generation:
    a declaration with an initialiser is visited as a synthesised
    assignment [x = init] (contributing an identifier and an assignment
    head on top of the initialiser's own nodes), and branch conditions,
    switch scrutinees and returned expressions are visited like any block
    element. *)

type shape =
  | Sassign
  | Sderef  (** unary [*] — kept apart from other unaries because
                dereference patterns ([{ *v }]) are common in checkers *)
  | Sunary
  | Sbinary
  | Scast
  | Scond
  | Scomma
  | Sfield
  | Sarrow
  | Sindex
  | Sident
  | Slit  (** int/float/char/string literals *)
  | Ssizeof
  | Sinit  (** brace initialiser *)
  | Scall_other  (** call through a computed callee expression *)

val n_shapes : int

val all_shapes : shape list
(** Every shape, in [shape_code] order. *)

val shape_code : shape -> int
(** Dense code in [0, n_shapes): bit position in summary masks. *)

val shape_name : shape -> string

(** The root constructor of a subject node, as dispatch discriminates it:
    calls to a known name are keyed by callee, everything else by shape. *)
type head = Named_call of string | Shape of shape

val head_of : Cast.expr -> head

val shape_code_of : Cast.expr -> int
(** Allocation-free [head_of] for per-node hot paths: the shape code
    directly, with every call (named or computed) mapping to
    [Scall_other]. Callers that key on callee names match
    [Ecall (Eident f, _)] themselves first. *)

type t = {
  mask : int;  (** bit [shape_code s] set iff some node has shape [s] *)
  calls : string list;  (** sorted, distinct callee names of named calls *)
}

val empty : t
val has_shape : t -> shape -> bool

val has_call : t -> bool
(** The block contains a call node (named or computed). *)

val of_block : Block.t -> t
val of_cfg : Cfg.t -> t array
val pp : Format.formatter -> t -> unit
