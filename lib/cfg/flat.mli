(** Flat, int-indexed supergraph tables for the traversal hot path.

    Built once by {!Supergraph.build} over every function's CFG, in input
    order. Each block of each function gets one dense {e flat id}
    ([block_base.(fidx) + bid]); successor lists, per-block head
    summaries and per-block node-event sequences live in contiguous
    arrays indexed by flat id, so the engine's per-block work is array
    reads instead of string-keyed hashtable probes and per-root list
    rebuilding. Immutable after [build]; shared read-only across engine
    worker domains. *)

(** One traversal event. The engine aliases this type: a block's events
    are its elements' subexpressions in execution order, declarations
    with initialisers synthesising a fresh-variable event followed by an
    [x = init] assignment tree, and the terminator's condition /
    scrutinee / returned expression last. *)
type ev =
  | Ev_node of Cast.expr
  | Ev_fresh of string
  | Ev_scope_end of string list

type ba_int = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  fnames : string array;  (** fidx -> function name, input order *)
  fidx_of : (string, int) Hashtbl.t;
  block_base : int array;
      (** length [nf+1]: flat id of function [fidx]'s block 0; the last
          entry is {!field:n_blocks} *)
  entry : int array;  (** fidx -> flat id of the entry block *)
  exit_ : int array;  (** fidx -> flat id of the exit block *)
  n_blocks : int;
  succ_off : int array;  (** length [n_blocks+1], CSR offsets *)
  succ : ba_int;
      (** flat successor ids; replicates {!Cfg.successors} exactly
          (Return flows to exit, equal Branch arms dedup, Switch targets
          sorted and deduped) *)
  head_mask : int array;  (** {!Block_heads} shape bitmask per flat block *)
  call_off : int array;  (** length [n_blocks+1], CSR offsets *)
  call_names : string array;  (** sorted distinct callee names per block *)
  events : ev array array;  (** flat id -> node events, execution order *)
  annots : (Cast.expr * string) array array;
      (** flat id -> [mc_branch]/[mc_return] terminator annotations the
          engine lays down on its first visit of the block per root
          context *)
}

val build : Cfg.t list -> t

val n_functions : t -> int

val fidx : t -> string -> int option
(** Dense function index of a defined function. *)

val fbase : t -> string -> int
(** Flat id of the function's block 0, or [-1] for unknown functions;
    flat id of block [bid] is [fbase + bid]. *)

val unflatten : t -> int -> string * int
(** [(fname, bid)] of a flat block id — the round trip of
    [fbase t fname + bid]. *)

val successors : t -> int -> int list
(** Flat successor ids of a flat block id. *)

val calls : t -> int -> string list
(** The block's named-call callees (sorted, distinct). *)

val events : t -> int -> ev array
val annots : t -> int -> (Cast.expr * string) array

val table_bytes : t -> int
(** Approximate byte size of the flat tables (excluding the AST nodes
    the event arrays reference), for the [--stats] memory line. *)
