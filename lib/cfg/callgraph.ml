module Smap = Map.Make (String)
module Sset = Set.Make (String)

type t = {
  callees_ : string list Smap.t;
  callers_ : string list Smap.t;
  roots_ : string list;
  cyclic : Sset.t;
}

let rec calls_of_expr acc (e : Cast.expr) =
  let acc =
    match e.enode with
    | Cast.Ecall ({ enode = Cast.Eident f; _ }, _) -> f :: acc
    | _ -> acc
  in
  let children =
    match e.enode with
    | Cast.Eunary (_, e1)
    | Cast.Ecast (_, e1)
    | Cast.Esizeof_expr e1
    | Cast.Efield (e1, _)
    | Cast.Earrow (e1, _) ->
        [ e1 ]
    | Cast.Ebinary (_, l, r)
    | Cast.Eassign (_, l, r)
    | Cast.Eindex (l, r)
    | Cast.Ecomma (l, r) ->
        [ l; r ]
    | Cast.Econd (c, t, f) -> [ c; t; f ]
    | Cast.Ecall (f, args) -> f :: args
    | Cast.Einit_list es -> es
    | Cast.Eint _ | Cast.Efloat _ | Cast.Echar _ | Cast.Estr _ | Cast.Eident _
    | Cast.Esizeof_type _ ->
        []
  in
  List.fold_left calls_of_expr acc children

let rec calls_of_stmt acc (s : Cast.stmt) =
  match s.snode with
  | Cast.Sexpr e -> calls_of_expr acc e
  | Cast.Sdecl ds ->
      List.fold_left
        (fun acc (d : Cast.decl) ->
          match d.dinit with Some e -> calls_of_expr acc e | None -> acc)
        acc ds
  | Cast.Sif (c, t, e) ->
      let acc = calls_of_expr acc c in
      let acc = calls_of_stmt acc t in
      Option.fold ~none:acc ~some:(calls_of_stmt acc) e
  | Cast.Swhile (c, b) -> calls_of_stmt (calls_of_expr acc c) b
  | Cast.Sdo (b, c) -> calls_of_expr (calls_of_stmt acc b) c
  | Cast.Sfor (init, c, step, b) ->
      let acc = Option.fold ~none:acc ~some:(calls_of_stmt acc) init in
      let acc = Option.fold ~none:acc ~some:(calls_of_expr acc) c in
      let acc = Option.fold ~none:acc ~some:(calls_of_expr acc) step in
      calls_of_stmt acc b
  | Cast.Sreturn (Some e) -> calls_of_expr acc e
  | Cast.Sblock ss -> List.fold_left calls_of_stmt acc ss
  | Cast.Sswitch (e, cases) ->
      let acc = calls_of_expr acc e in
      List.fold_left
        (fun acc (c : Cast.case) -> List.fold_left calls_of_stmt acc c.case_body)
        acc cases
  | Cast.Slabel (_, s) -> calls_of_stmt acc s
  | Cast.Sreturn None | Cast.Sbreak | Cast.Scontinue | Cast.Sgoto _ | Cast.Snull -> acc

let dedup xs =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.replace seen x ();
        true
      end)
    xs

let reachable callees_ roots =
  let visited = ref Sset.empty in
  let rec go f =
    if not (Sset.mem f !visited) then begin
      visited := Sset.add f !visited;
      List.iter go (Option.value (Smap.find_opt f callees_) ~default:[])
    end
  in
  List.iter go roots;
  !visited

let build (funcs : Cast.fundef list) =
  let defined =
    List.fold_left (fun s (f : Cast.fundef) -> Sset.add f.fname s) Sset.empty funcs
  in
  let callees_ =
    List.fold_left
      (fun m (f : Cast.fundef) ->
        let calls =
          dedup (List.filter (fun c -> Sset.mem c defined) (List.rev (calls_of_stmt [] f.fbody)))
        in
        Smap.add f.fname calls m)
      Smap.empty funcs
  in
  let callers_ =
    Smap.fold
      (fun caller callees m ->
        List.fold_left
          (fun m callee ->
            let existing = Option.value (Smap.find_opt callee m) ~default:[] in
            Smap.add callee (caller :: existing) m)
          m callees)
      callees_
      (Smap.map (fun _ -> []) callees_)
  in
  let no_caller =
    List.filter
      (fun f -> Option.value (Smap.find_opt f callers_) ~default:[] = [])
      (List.map (fun (f : Cast.fundef) -> f.fname) funcs)
  in
  (* Break recursion-only components arbitrarily: keep adding the
     lexicographically first unreached function as a root. *)
  let roots_ = ref no_caller in
  let rec top_up () =
    let reached = reachable callees_ !roots_ in
    let unreached = Sset.diff defined reached in
    match Sset.min_elt_opt unreached with
    | None -> ()
    | Some f ->
        roots_ := !roots_ @ [ f ];
        top_up ()
  in
  top_up ();
  (* cycle detection: a function is cyclic if it can reach itself *)
  let cyclic =
    Sset.filter
      (fun f ->
        let direct = Option.value (Smap.find_opt f callees_) ~default:[] in
        Sset.mem f (reachable callees_ direct))
      defined
  in
  { callees_; callers_; roots_ = !roots_; cyclic }

let callees t f = Option.value (Smap.find_opt f t.callees_) ~default:[]
let callers t f = Option.value (Smap.find_opt f t.callers_) ~default:[]
let roots t = t.roots_
let is_defined t f = Smap.mem f t.callees_
let functions t = List.map fst (Smap.bindings t.callees_)
let in_cycle t f = Sset.mem f t.cyclic

(* Longest chain of calls below each function, or [None] when the
   function's transitive callee closure touches a recursive cycle (no
   finite height exists). Memoised over the whole graph; safe to recurse
   without an on-stack marker because a function outside [cyclic] cannot
   reach itself, so the DFS never re-enters a frame it has open. *)
let acyclic_heights t =
  let memo : (string, int option) Hashtbl.t = Hashtbl.create 64 in
  let rec go f =
    match Hashtbl.find_opt memo f with
    | Some r -> r
    | None ->
        let r =
          if Sset.mem f t.cyclic then None
          else
            List.fold_left
              (fun acc c ->
                match (acc, go c) with
                | Some a, Some hc -> Some (max a (hc + 1))
                | _ -> None)
              (Some 0) (callees t f)
        in
        Hashtbl.replace memo f r;
        r
  in
  Smap.iter (fun f _ -> ignore (go f)) t.callees_;
  fun f -> Option.join (Hashtbl.find_opt memo f)

let closures t =
  let tbl = Hashtbl.create 64 in
  Smap.iter
    (fun f _ ->
      Hashtbl.replace tbl f (Sset.elements (reachable t.callees_ [ f ])))
    t.callees_;
  fun f ->
    match Hashtbl.find_opt tbl f with Some c -> c | None -> [ f ]

let pp ppf t =
  Format.fprintf ppf "@[<v>roots: %s" (String.concat ", " t.roots_);
  Smap.iter
    (fun f callees ->
      Format.fprintf ppf "@ %s -> %s" f (String.concat ", " callees))
    t.callees_;
  Format.fprintf ppf "@]"
