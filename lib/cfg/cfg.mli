(** Control-flow graph construction for one function.

    Lowering notes:
    - [&&], [||] and [!] in branch conditions are lowered to nested branches
      (short-circuit), so path-specific metal transitions (Section 3.2) see
      one atomic condition per branch.
    - [return] terminators implicitly continue to the single exit node [ep]
      (Section 6's supergraph adds [sp]/[ep] nodes; our entry block is [sp]
      and the exit block is [ep]).
    - loop headers carry the set of variables assigned in the loop, for the
      false-path pruner's havoc rule (Section 8 step 3). *)

type t = {
  fname : string;
  entry : int;
  exit_ : int;
  blocks : Block.t array;
  func : Cast.fundef;
}

val of_fundef : Cast.fundef -> t

val block : t -> int -> Block.t

val successors : t -> int -> int list
(** Like {!Block.successors} but [Return] blocks flow to the exit node. *)

val pp : Format.formatter -> t -> unit

val n_blocks : t -> int

val find_blocks : t -> (Block.t -> bool) -> Block.t list

val locals_of : Cast.fundef -> (string * Ctyp.t) list
(** Every local declared anywhere in the body (parameters excluded). *)
