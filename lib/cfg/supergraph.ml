type t = {
  cfgs : (string, Cfg.t) Hashtbl.t;
  callgraph : Callgraph.t;
  typing : Ctyping.env;
  tunits : Cast.tunit list;
  heads : (string, Block_heads.t array) Hashtbl.t;
  flat : Flat.t;
  ids : Exprid.t;
}

let build tunits =
  (* Parser error recovery leaves [Gskipped] stubs where top-level
     definitions failed to parse. They have no body, so they contribute
     nothing to the CFG table or the callgraph — a call to a skipped name
     is an unknown call, the conservative model — but each one is
     surfaced here, where every driver path (CLI, check_files, tests)
     funnels through. *)
  List.iter
    (fun (tu : Cast.tunit) ->
      List.iter
        (function
          | Cast.Gskipped sk ->
              Diag.warnf "%s: skipped unparseable definition%s (through %s): %s"
                (Srcloc.to_string sk.Cast.sk_from)
                (match sk.Cast.sk_name with Some n -> " '" ^ n ^ "'" | None -> "")
                (Srcloc.to_string sk.Cast.sk_to)
                sk.Cast.sk_msg
          | _ -> ())
        tu.tu_globals)
    tunits;
  let funcs =
    List.concat_map
      (fun (tu : Cast.tunit) ->
        List.filter_map
          (function Cast.Gfun f -> Some f | _ -> None)
          tu.tu_globals)
      tunits
  in
  (* A program with two definitions of the same function is ill-formed, but
     multi-file runs over unrelated sources hit it in practice. Keep the
     first definition (input order, so the choice is deterministic) and warn
     with both locations; later ones are dropped from both the CFG table and
     the callgraph, so every layer sees the same single body. *)
  let seen : (string, Cast.fundef) Hashtbl.t = Hashtbl.create 64 in
  let funcs =
    List.filter
      (fun (f : Cast.fundef) ->
        match Hashtbl.find_opt seen f.fname with
        | None ->
            Hashtbl.add seen f.fname f;
            true
        | Some first ->
            (* through the uniform stderr diagnostics channel, not the Logs
               reporter: reports on stdout must stay machine-parseable and
               this warning must survive even when no reporter is set *)
            Diag.warnf "duplicate definition of %s at %s ignored (keeping %s)"
              f.fname (Srcloc.to_string f.floc)
              (Srcloc.to_string first.floc);
            false)
      funcs
  in
  (* One CFG per surviving definition, lowered once and shared by the
     name-keyed table, the flat tables and the head summaries below. *)
  let cfg_list = List.map Cfg.of_fundef funcs in
  let cfgs = Hashtbl.create 64 in
  List.iter (fun (cfg : Cfg.t) -> Hashtbl.replace cfgs cfg.Cfg.fname cfg) cfg_list;
  (* The flat tables and head summaries are computed eagerly so the
     supergraph stays immutable once built — parallel engine workers
     share it across domains. Heads are views over the flat tables (one
     expression walk covers both). *)
  let flat = Flat.build cfg_list in
  let heads = Hashtbl.create (Hashtbl.length cfgs) in
  List.iter
    (fun (cfg : Cfg.t) ->
      let base = Flat.fbase flat cfg.Cfg.fname in
      Hashtbl.replace heads cfg.Cfg.fname
        (Array.init (Cfg.n_blocks cfg) (fun bid ->
             {
               Block_heads.mask = flat.Flat.head_mask.(base + bid);
               calls = Flat.calls flat (base + bid);
             })))
    cfg_list;
  {
    cfgs;
    callgraph = Callgraph.build funcs;
    typing = Ctyping.of_program tunits;
    tunits;
    heads;
    flat;
    (* like [flat]: computed eagerly, frozen, shared across domains — the
       hash-cons table every traversal resolves instance targets against *)
    ids = Exprid.build ~tunits ~cfgs:cfg_list;
  }

let cfg_of t name = Hashtbl.find_opt t.cfgs name
let heads_of t name = Hashtbl.find_opt t.heads name

let fundef_of t name =
  match Hashtbl.find_opt t.cfgs name with
  | Some cfg -> Some cfg.Cfg.func
  | None -> None

let roots t = Callgraph.roots t.callgraph

let file_of_function t name =
  Option.map (fun (f : Cast.fundef) -> f.ffile) (fundef_of t name)

let pp ppf t =
  Format.fprintf ppf "@[<v>%a" Callgraph.pp t.callgraph;
  Hashtbl.iter (fun _ cfg -> Format.fprintf ppf "@ @ %a" Cfg.pp cfg) t.cfgs;
  Format.fprintf ppf "@]"
