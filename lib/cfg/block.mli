(** Basic blocks — xgcc's internal representation of a function's CFG
    (Section 5.2).

    A block holds the statement-level expression trees executed in it, in
    order, plus a terminator. Loop headers carry a havoc set: the variables
    assigned anywhere in the loop body, which the false-path pruner must
    forget (Section 8, step 3). *)

type elem =
  | Tree of Cast.expr  (** one statement-level expression tree *)
  | Decl of Cast.decl  (** a declaration; its initializer is analysed *)
  | End_of_scope of string list
      (** the listed locals permanently leave scope here (block exit);
          triggers metal's [$end_of_path$]-style scope events *)

type terminator =
  | Jump of int
  | Branch of Cast.expr * int * int  (** condition, true target, false target *)
  | Switch of Cast.expr * (int64 option * int) list
      (** scrutinee and (guard, target) arms; [None] guard is [default].
          The arm list always contains a default (possibly the join). *)
  | Return of Cast.expr option
  | Exit  (** the function's single exit node [ep] *)

type t = {
  bid : int;
  mutable elems : elem list;
  mutable term : terminator;
  mutable havoc : string list;
      (** variables to forget on entry (nonempty only for loop headers) *)
  mutable bloc : Srcloc.t;
}

val pp_elem : Format.formatter -> elem -> unit
val pp_terminator : Format.formatter -> terminator -> unit
val pp : Format.formatter -> t -> unit

val successors : t -> int list
