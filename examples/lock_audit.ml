(* Lock audit: the Figure 3 lock checker over a synthetic driver.

   Demonstrates path-specific transitions (trylock succeeds only on the
   true branch), the $end_of_path$ pattern (lock never released), and the
   generic ranking of Section 9. *)

let driver_code =
  {|
struct lk { int held; };

int dev_read(struct lk *mu, int want) {
   lock(mu);
   if (want < 0) {
      unlock(mu);
      return -1;
   }
   want = want + 1;
   unlock(mu);
   return want;
}

int dev_write(struct lk *mu, int n) {
   lock(mu);
   if (n == 0) {
      return 0;       // BUG: forgot unlock on the early return
   }
   unlock(mu);
   return n;
}

int dev_poll(struct lk *mu, int flags) {
   if (trylock(mu)) {
      flags = flags | 1;
      unlock(mu);
   }
   return flags;
}

int dev_reset(struct lk *mu) {
   lock(mu);
   lock(mu);          // BUG: double acquire
   unlock(mu);
   return 0;
}

int dev_stop(struct lk *mu) {
   unlock(mu);        // BUG: releasing a lock that is not held
   return 0;
}
|}

let () =
  Format.printf "=== lock audit (Figure 3 checker) ===@.@.";
  let checker = Lock_checker.checker () in
  let result = Engine.check_source ~file:"driver.c" driver_code [ checker ] in
  let ranked = Rank.generic_sort result.Engine.reports in
  Format.printf "%d errors, ranked:@." (List.length ranked);
  List.iteri (fun i r -> Format.printf "  %2d. %a@." (i + 1) Report.pp r) ranked;
  Format.printf "@.Recursive-lock variant (instance data values, Sec. 3.2):@.";
  let rec_code =
    {|
struct lk { int held; };
int nested(struct lk *mu, int n) {
   rlock(mu);
   rlock(mu);
   runlock(mu);
   if (n) { return n; }   // BUG: depth still 1 here
   runlock(mu);
   return 0;
}
|}
  in
  let result2 =
    Engine.check_source ~file:"nested.c" rec_code [ Lock_checker.recursive_checker () ]
  in
  List.iter (fun r -> Format.printf "  %a@." Report.pp r) result2.Engine.reports
