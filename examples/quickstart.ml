(* Quickstart: the paper's running example, end to end.

   Compiles the free checker of Figure 1 from metal source, runs it over
   the code of Figure 2 with the full interprocedural engine, and prints
   the two use-after-free errors the paper finds (lines 12 and 17) —
   including the interprocedural one in the caller. *)

let free_checker_src =
  {|
sm free_checker {
  state decl any_pointer v;

  start:
    { kfree(v) } ==> v.freed
  ;

  v.freed:
    { *v } ==> v.stop, { err("using %s after free!", mc_identifier(v)); }
  | { kfree(v) } ==> v.stop, { err("double free of %s!", mc_identifier(v)); }
  ;
}
|}

(* Figure 2, with the paper's line numbers preserved. *)
let example_code =
  {|int contrived(int *p, int *w, int x) {
   int *q;

   if(x)
   {
      kfree(w);
      q = p;
      p = 0;
   }
   if(!x)
      return *w;   // safe
   return *q;      // using 'q' after free!
}
int contrived_caller(int *w, int x, int *p) {
   kfree(p);
   contrived(p, w, x);
   return *w;      // using 'w' after free!
}
|}

let () =
  Format.printf "=== metal/xgcc quickstart ===@.@.";
  Format.printf "Checker (Figure 1):%s@." free_checker_src;
  let checkers = Metal_compile.load ~file:"free_checker.metal" free_checker_src in
  let result = Engine.check_source ~file:"fig2.c" example_code checkers in
  Format.printf "Errors found (%d):@." (List.length result.Engine.reports);
  List.iter (fun r -> Format.printf "  %a@." Report.pp r) result.Engine.reports;
  Format.printf "@.Engine statistics:@.";
  let st = result.Engine.stats in
  Format.printf
    "  blocks visited: %d, nodes: %d, paths: %d, cache hits: %d, pruned branches: %d@."
    st.Engine.blocks_visited st.Engine.nodes_visited st.Engine.paths_explored
    st.Engine.cache_hits st.Engine.pruned_branches;
  Format.printf "  calls followed: %d, summary hits: %d@." st.Engine.calls_followed
    st.Engine.summary_hits
