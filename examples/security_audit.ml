(* Security audit: the user-pointer checker with composition and ranking.

   Runs the path-kill extension first (so nothing is reported on paths that
   panic), then the security checker and the free checker over a generated
   "kernel module"; reports come out SECURITY-first via the severity
   stratification of Section 9, with history-based suppression demonstrated
   across two "releases" of the code. *)

let module_v1 =
  {|
struct lk { int held; };

int sys_read_config(int len) {
   char *uptr = get_user_pointer(len);
   char kbuf[32];
   if (len > 32) { panic("bad length"); }
   copy_from_user(kbuf, uptr, len);
   return kbuf[0];
}

int sys_set_mode(int len) {
   char *uptr = get_user_pointer(len);
   return *uptr;              // SECURITY: unvalidated user pointer
}

int sys_cleanup(int n) {
   int *scratch = kmalloc(n);
   if (!scratch) { return -1; }
   kfree(scratch);
   return *scratch;           // use after free
}

int sys_panic_path(int len) {
   char *uptr = get_user_pointer(len);
   panic("unreachable feature");
   return *uptr;              // dominated by panic: must NOT be reported
}
|}

(* v2 fixes nothing but adds one new bug; history suppression should show
   only the new report. *)
let module_v2 = module_v1 ^ {|
int sys_new_feature(int len) {
   char *nptr = get_user_pointer(len);
   return *nptr;              // new SECURITY bug in v2
}
|}

let run src =
  let checkers =
    [ Pathkill.checker (); Security_checker.checker (); Free_checker.checker () ]
  in
  Engine.check_source ~file:"module.c" src checkers

let () =
  Format.printf "=== security audit ===@.@.";
  let result = run module_v1 in
  let ranked = Rank.generic_sort result.Engine.reports in
  Format.printf "v1 reports (severity-ranked: SECURITY first):@.";
  List.iteri
    (fun i (r : Report.t) ->
      Format.printf "  %2d. [%s] %a@." (i + 1)
        (match Rank.severity_of r with
        | Rank.Security -> "SECURITY"
        | Rank.Error_path -> "ERROR"
        | Rank.Normal -> "normal"
        | Rank.Minor -> "minor")
        Report.pp r)
    ranked;
  (* the panic-dominated deref must be absent *)
  let leaked =
    List.exists (fun (r : Report.t) -> String.equal r.func "sys_panic_path") ranked
  in
  Format.printf "@.panic-dominated path suppressed: %b@." (not leaked);

  Format.printf "@.--- version 2, with history suppression ---@.";
  let db = History.of_reports result.Engine.reports in
  let result2 = run module_v2 in
  let fresh, suppressed = History.suppress db result2.Engine.reports in
  Format.printf "v2: %d reports, %d suppressed as previously seen, %d new:@."
    (List.length result2.Engine.reports)
    suppressed (List.length fresh);
  List.iter (fun r -> Format.printf "  NEW %a@." Report.pp r) fresh
