(* Whole-program audit: the full pipeline on a multi-file code base.

   Generates a three-file "kernel module" with planted bugs, runs pass 1
   (emit ASTs) and pass 2 (reassemble + analyse) exactly as Section 6
   describes, applies every built-in checker, ranks the reports, and shows
   detection against the generator's ground truth. *)

let () =
  Format.printf "=== whole-program audit ===@.@.";
  (* a shared-helpers file plus three client files: every planted
     use-after-free crosses a file boundary through a helper *)
  let files =
    Gen.generate_linked ~seed:2026 ~n_files:3 ~funcs_per_file:10 ~bug_rate:0.35
  in
  let tmpdir = Filename.temp_file "mc_wp" "" in
  Sys.remove tmpdir;
  Sys.mkdir tmpdir 0o755;

  (* pass 1: each file parsed in isolation, AST emitted *)
  let ast_files =
    List.map
      (fun (name, (g : Gen.t)) ->
        let tu = Cparse.parse_tunit ~file:name g.Gen.source in
        let path = Filename.concat tmpdir (name ^ ".mcast") in
        Cast_io.emit_file path tu;
        Format.printf "pass 1: %-10s -> %s (%d bytes of AST)@." name path
          (String.length (Cast_io.emit_string tu));
        path)
      files
  in

  (* pass 2: reassemble ASTs, build the supergraph *)
  let tus = List.map Cast_io.read_file ast_files in
  let sg = Supergraph.build tus in
  Format.printf "@.pass 2: %d translation units, roots: %s@." (List.length tus)
    (String.concat ", " (Supergraph.roots sg));

  (* run every checker *)
  let checkers = List.map (fun e -> e.Registry.e_make ()) (Registry.all ()) in
  let result = Engine.run sg checkers in
  let ranked = Rank.generic_sort result.Engine.reports in
  Format.printf "@.%d reports (severity-ranked):@." (List.length ranked);
  List.iteri (fun i r -> Format.printf "  %2d. %a@." (i + 1) Report.pp r) ranked;

  (* ground truth *)
  let planted = List.concat_map (fun (_, (g : Gen.t)) -> g.Gen.planted) files in
  let detected =
    List.filter
      (fun (p : Gen.planted) ->
        List.exists
          (fun (r : Report.t) -> String.equal r.Report.func p.Gen.in_function)
          result.Engine.reports)
      planted
  in
  Format.printf "@.detection: %d / %d planted bugs@." (List.length detected)
    (List.length planted);
  List.iter
    (fun (p : Gen.planted) ->
      let hit =
        List.exists
          (fun (r : Report.t) -> String.equal r.Report.func p.Gen.in_function)
          result.Engine.reports
      in
      Format.printf "  %-24s %-22s %s@." p.Gen.in_function
        (Gen.bug_kind_to_string p.Gen.kind)
        (if hit then "found" else "MISSED"))
    planted;

  (* engine statistics *)
  let st = result.Engine.stats in
  Format.printf
    "@.engine: %d blocks, %d nodes, %d paths, %d cache hits, %d calls followed, %d summary hits@."
    st.Engine.blocks_visited st.Engine.nodes_visited st.Engine.paths_explored
    st.Engine.cache_hits st.Engine.calls_followed st.Engine.summary_hits;

  (* cleanup *)
  List.iter Sys.remove ast_files;
  Sys.rmdir tmpdir
