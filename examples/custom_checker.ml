(* Writing a new system-specific checker from scratch — the paper's core
   pitch: "a day's work can produce an extension that finds tens or even
   hundreds of serious errors".

   The rule (a real Linux idiom): functions like dentry_open() return
   error-encoded pointers; callers must test IS_ERR(p) before using p, and
   must never pass an ERR_PTR to kfree(). The checker is ~20 lines of
   metal; everything else here is scaffolding to run and rank it. *)

let is_err_checker =
  {|
sm is_err_checker {
  state decl any_pointer v;
  decl any_arguments args;
  decl any_expr x;

  start:
    { v = dentry_open(args) } || { v = clk_get(args) } ==> v.maybe_err
  ;

  v.maybe_err:
    { IS_ERR(v) } ==> { true = v.is_err, false = v.valid }
  | ${ mc_derefs(mc_stmt, v) } ==> v.stop,
      { err("%s may be ERR_PTR: dereferenced without IS_ERR check",
            mc_identifier(v)); }
  | { kfree(v) } ==> v.stop,
      { err("%s may be ERR_PTR: kfree would corrupt the heap",
            mc_identifier(v)); }
  ;

  v.is_err:
    ${ mc_derefs(mc_stmt, v) } ==> v.stop,
      { annotate("ERROR");
        err("dereferencing %s on the IS_ERR path!", mc_identifier(v)); }
  ;

  v.valid:
    $end_of_path$ ==> v.stop
  ;
}
|}

let subject =
  {|
struct file { int mode; };

int open_config(int flags) {
   struct file *f = dentry_open(flags);
   if (IS_ERR(f)) {
      return -1;
   }
   return f->mode;            /* fine: checked */
}

int open_log(int flags) {
   struct file *f = dentry_open(flags);
   return f->mode;            /* bug: no IS_ERR check */
}

int open_and_free(int flags) {
   struct file *f = dentry_open(flags);
   kfree(f);                  /* bug: may be ERR_PTR */
   return 0;
}

int open_worse(int flags) {
   struct file *f = dentry_open(flags);
   if (IS_ERR(f)) {
      return f->mode;         /* bug: deref on the error path */
   }
   return f->mode;
}
|}

let () =
  Format.printf "=== writing a custom checker: IS_ERR discipline ===@.@.";
  Format.printf "The checker (metal):%s@." is_err_checker;
  let checkers = Metal_compile.load ~file:"is_err.metal" is_err_checker in
  (* also show the parsed/pretty-printed form, as 'xgcc show-checker' would *)
  (match Metal_parse.parse ~file:"is_err.metal" is_err_checker with
  | [ m ] -> Format.printf "pretty-printed back from the AST:@.%s@.@." (Metal_pp.to_string m)
  | _ -> ());
  let result = Engine.check_source ~file:"fs.c" subject checkers in
  Format.printf "findings (%d):@." (List.length result.Engine.reports);
  List.iteri
    (fun i r -> Format.printf "  %d. %a@." (i + 1) Report.pp r)
    (Rank.generic_sort result.Engine.reports);
  Format.printf "@.(open_config is clean: the IS_ERR branch transition works)@."
