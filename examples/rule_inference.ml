(* Rule inference: the statistical analyses of Sections 3.2 and 9.

   Part 1 infers must-be-paired functions from co-occurrence counts and
   ranks candidate rules by z-statistic (the "bugs as deviant behavior"
   technique the paper cites as [10]).

   Part 2 reproduces the statistical free-checker anecdote of Section 9:
   a wrapper that frees its argument only conditionally floods the naive
   analysis with false positives; z-ranking pushes that whole cluster to
   the bottom while the real errors rise to the top. *)

let corpus =
  {|
struct res { int id; };

int job_a(int n) {
   open_res(n);
   n = n + 1;
   close_res(n);
   return n;
}

int job_b(int n) {
   open_res(n);
   if (n > 3) { n = n * 2; }
   close_res(n);
   return n;
}

int job_c(int n) {
   open_res(n);
   close_res(n);
   return 0;
}

int job_d(int n) {
   open_res(n);
   return n;        // deviant: open_res without close_res
}

int job_e(int n) {
   log_msg(n);      // log_msg is unpaired noise: it appears alone
   open_res(n);
   close_res(n);
   return n;
}
|}

let conditional_free_corpus =
  {|
// maybe_release frees its argument only when mode is set; a
// flow-insensitive "functions that free their argument" analysis decides
// it always frees, producing a cluster of false positives.
void maybe_release(int *p, int mode) {
   if (mode) { kfree(p); }
}

void always_release(int *p) { kfree(p); }

int user1(int n) {
   int *a = kmalloc(n);
   always_release(a);
   return *a;          // real use-after-free
}

int user2(int n) {
   int *b = kmalloc(n);
   always_release(b);
   return n;           // correct
}

int user3(int n) {
   int *c = kmalloc(n);
   maybe_release(c, 0);
   return *c;          // idiomatic: not actually freed (mode = 0)
}

int user4(int n) {
   int *d = kmalloc(n);
   maybe_release(d, 0);
   return *d;          // same idiom: false positive for the naive pass
}

int user5(int n) {
   int *e = kmalloc(n);
   maybe_release(e, 0);
   return *e;          // and again
}
|}

let () =
  Format.printf "=== rule inference (statistical analysis) ===@.@.";
  let tu = Cparse.parse_tunit ~file:"corpus.c" corpus in
  let sg = Supergraph.build [ tu ] in
  let pairs = Infer_pairs.candidates sg () in
  Format.printf "candidate pairs (a before b in >= 2 functions):@.";
  List.iter (fun (a, b) -> Format.printf "  %s -> %s@." a b) pairs;
  let result, ranking = Infer_pairs.run sg ~pairs in
  Format.printf "@.inferred rules ranked by z-statistic:@.";
  List.iter (fun (rule, z) -> Format.printf "  z = %6.2f  %s@." z rule) ranking;
  Format.printf "@.violations of the top rule:@.";
  let top = match ranking with (r, _) :: _ -> r | [] -> "" in
  List.iter
    (fun (r : Report.t) ->
      if Option.equal String.equal r.rule (Some top) then
        Format.printf "  %a@." Report.pp r)
    result.Engine.reports;

  Format.printf "@.=== statistical free checker (Section 9) ===@.@.";
  let tu2 = Cparse.parse_tunit ~file:"frees.c" conditional_free_corpus in
  let sg2 = Supergraph.build [ tu2 ] in
  let frees = Free_stat.freeing_functions sg2 ~dealloc:[ "kfree" ] in
  Format.printf "functions inferred to free an argument:@.";
  List.iter (fun (f, i) -> Format.printf "  %s (arg %d)@." f i) frees;
  let result2, ranking2 = Free_stat.run sg2 ~dealloc:[ "kfree" ] in
  Format.printf "@.per-rule z-statistics (high = reliable rule):@.";
  List.iter (fun (rule, z) -> Format.printf "  z = %6.2f  %s@." z rule) ranking2;
  Format.printf "@.reports in statistical rank order:@.";
  let sorted = Rank.statistical_sort ~counters:result2.Engine.counters result2.Engine.reports in
  List.iteri (fun i r -> Format.printf "  %2d. %a@." (i + 1) Report.pp r) sorted
