(* xgcc — command-line driver for the metal/xgcc reproduction.

   Subcommands:
     check            run checkers over C files and print ranked reports
     list-checkers    the built-in extensions, with their metal LoC
     show-checker     print a checker's metal source
     dump-cfg         print a function's control-flow graph
     dump-summaries   print block + suffix summaries (Figure 5 material)
     demo             reproduce the paper's Figure 2 run
     gen              generate a random workload with ground-truth bugs
     cache            inspect the persistent incremental cache *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Preprocessing configuration shared by check/emit/triage. *)
let cpp_conf = ref None (* (defines, include dirs) *)

let set_cpp ~use_cpp ~defines ~incdirs =
  if use_cpp || defines <> [] || incdirs <> [] then begin
    let defines =
      List.map
        (fun d ->
          match String.index_opt d '=' with
          | Some i ->
              (String.sub d 0 i, String.sub d (i + 1) (String.length d - i - 1))
          | None -> (d, ""))
        defines
    in
    cpp_conf := Some (defines, incdirs)
  end

let resolve_include incdirs name =
  List.find_map
    (fun dir ->
      let path = Filename.concat dir name in
      if Sys.file_exists path then Some (read_file path) else None)
    ("." :: incdirs)

(* AST object cache configuration: (cache dir, persist new objects).
   Hit/miss counters are atomic because pass-1 emission loads files on a
   domain pool. *)
let ast_cache_conf = ref None
let ast_hits = Atomic.make 0
let ast_misses = Atomic.make 0

let set_ast_cache ~cache_dir ~persist =
  ast_cache_conf := Option.map (fun dir -> (dir, persist)) cache_dir

(* Pass 2 (Section 6): .mcast files are pre-parsed ASTs emitted by pass 1
   ('xgcc emit'); anything else is (optionally preprocessed and) parsed
   from C source — via the content-addressed object cache when
   --cache-dir is given, so a warm run skips lexing and parsing. *)
let load_tunit f =
  if Filename.check_suffix f ".mcast" then Cast_io.read_file f
  else begin
    let src = read_file f in
    let src =
      match !cpp_conf with
      | None -> src
      | Some (defines, incdirs) ->
          Cpp.preprocess ~defines ~resolve_include:(resolve_include incdirs) ~file:f src
    in
    match !ast_cache_conf with
    | None -> Cparse.parse_tunit ~file:f src
    | Some (cache_dir, persist) -> (
        let fp = Cast_io.ast_fingerprint ~file:f ~source:src in
        match Cast_io.read_cached ~cache_dir fp with
        | Some tu ->
            Atomic.incr ast_hits;
            tu
        | None ->
            Atomic.incr ast_misses;
            let tu = Cparse.parse_tunit ~file:f src in
            if persist then Cast_io.write_cached ~cache_dir fp tu;
            tu)
  end

(* Fault-contained loading for 'check': a file that cannot be loaded at
   all — corrupt .mcast, lexical error, structural cpp error, I/O error —
   is skipped with a diagnostic instead of aborting the whole run.
   Definition-level parse errors never reach here: the parser recovers
   in-place and records Gskipped stubs (warned about by Supergraph.build). *)
let load_tunit_result f =
  if Filename.check_suffix f ".mcast" then Cast_io.read_file_result f
  else
    match load_tunit f with
    | tu -> Ok tu
    | exception Clex.Lex_error (loc, msg) ->
        Error (Printf.sprintf "%s: lexical error: %s" (Srcloc.to_string loc) msg)
    | exception Cpp.Cpp_error (loc, msg) ->
        Error (Printf.sprintf "%s: preprocessor error: %s" (Srcloc.to_string loc) msg)
    | exception Sys_error msg -> Error msg

let load_program files = Supergraph.build (List.map load_tunit files)

(* Each extension comes with its defining source text, which the
   persistent cache digests into its keys: editing a checker (or anything
   earlier in the composition chain) invalidates its cached results. *)
let resolve_checkers names metal_files =
  let builtin =
    List.map
      (fun name ->
        match Registry.find name with
        | Some e ->
            ( e.Registry.e_make (),
              Option.value e.Registry.e_source
                ~default:(e.Registry.e_name ^ "\n" ^ e.Registry.e_description) )
        | None ->
            Format.eprintf "unknown checker '%s'; try list-checkers@." name;
            exit 2)
      names
  in
  let from_files =
    List.concat_map
      (fun f ->
        let src = read_file f in
        List.map (fun sm -> (sm, src)) (Metal_compile.load_file f))
      metal_files
  in
  match builtin @ from_files with
  | [] -> (
      match Registry.find "free" with
      | Some e ->
          [
            ( Free_checker.checker (),
              Option.value e.Registry.e_source ~default:"free" );
          ]
      | None -> [ (Free_checker.checker (), "free") ])
  | cs -> cs

let open_store ~cache_dir ~persist ~options sources =
  Option.map
    (fun dir ->
      let ext_keys =
        Summary_store.ext_keys_of
          ~options_digest:(Engine.options_digest options)
          ~sources
      in
      Summary_store.create ~dir ~persist ~ext_keys ())
    cache_dir

let options_of ~no_cache ~no_prune ~no_interproc ~no_kill ~no_synonyms
    ~no_dispatch ~no_flat ~no_state_ids ~max_nodes ~timeout =
  {
    Engine.default_options with
    Engine.caching = not no_cache;
    pruning = not no_prune;
    interproc = not no_interproc;
    auto_kill = not no_kill;
    synonyms = not no_synonyms;
    dispatch = not no_dispatch;
    flatten = not no_flat;
    state_ids = not no_state_ids;
    max_nodes_per_root = max max_nodes 0;
    timeout_per_root = Float.max timeout 0.;
  }

(* ------------------------------------------------------------------ *)
(* check                                                               *)
(* ------------------------------------------------------------------ *)

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

(* -j 0 means "use every core"; anything else is the worker-domain count. *)
let effective_jobs jobs =
  if jobs = 0 then Pool.recommended_jobs () else max 1 jobs

let do_check files checkers metal_files rank_mode fmt history_db update_history
    no_cache no_prune no_interproc no_kill no_synonyms no_dispatch no_flat
    no_state_ids stats
    verbose use_cpp defines incdirs jobs cache_dir no_cache_persist max_nodes
    timeout keep_going =
  setup_logs verbose;
  set_cpp ~use_cpp ~defines ~incdirs;
  set_ast_cache ~cache_dir ~persist:(not no_cache_persist);
  if files = [] then begin
    Format.eprintf "no input files@.";
    exit 2
  end;
  let exts_src = resolve_checkers checkers metal_files in
  let exts = List.map fst exts_src in
  let options =
    options_of ~no_cache ~no_prune ~no_interproc ~no_kill ~no_synonyms
      ~no_dispatch ~no_flat ~no_state_ids ~max_nodes ~timeout
  in
  let store =
    open_store ~cache_dir ~persist:(not no_cache_persist) ~options
      (List.map snd exts_src)
  in
  (* Snapshot the inputs before loading anything: after the run,
     Watch.drifted compares disk against this snapshot, so an edit
     landing mid-run degrades the affected roots loudly instead of
     silently pairing a stale AST with fresh summaries. An unreadable
     input disables drift detection only — loading below warns and
     skips it as before. *)
  let watch = match Watch.create files with Ok w -> Some w | Error _ -> None in
  let t0 = Unix.gettimeofday () in
  let tus, skipped_files =
    List.fold_left
      (fun (tus, skips) f ->
        match load_tunit_result f with
        | Ok tu -> (tu :: tus, skips)
        | Error msg ->
            Diag.warnf "%s: skipping entire file: %s" f msg;
            (tus, skips + 1))
      ([], 0) files
  in
  let tus = List.rev tus in
  let t1 = Unix.gettimeofday () in
  let sg = Supergraph.build tus in
  let t2 = Unix.gettimeofday () in
  let alloc0 = Gc.allocated_bytes () in
  let result = Engine.run ~options ~jobs:(effective_jobs jobs) ?cache:store sg exts in
  let alloc1 = Gc.allocated_bytes () in
  let t3 = Unix.gettimeofday () in
  List.iter
    (fun (d : Engine.degraded) ->
      Diag.warnf "analysis of root %s degraded: %s" d.Engine.d_root
        d.Engine.d_reason)
    result.Engine.degraded;
  let drift_roots =
    match watch with
    | None -> []
    | Some w -> (
        match Watch.drifted w with
        | [] -> []
        | drifted ->
            List.iter
              (fun p ->
                Diag.warnf
                  "%s: file changed on disk during the run; reports reflect \
                   the snapshot read at load time" p)
              drifted;
            let roots = Watch.stale_roots sg drifted in
            List.iter
              (fun root ->
                Diag.warnf
                  "analysis of root %s degraded: source file changed on disk \
                   during the run" root)
              roots;
            roots)
  in
  (* fold the pass-1 AST counters into the store's stats and re-save the
     last-run record so `xgcc cache stats` sees them (the engine saved its
     own counters before the AST atomics were read) *)
  (match store with
  | Some s ->
      let cst = Summary_store.stats s in
      cst.Summary_store.ast_hits <- Atomic.get ast_hits;
      cst.Summary_store.ast_misses <- Atomic.get ast_misses;
      Summary_store.save_last_run s
  | None -> ());
  let skipped_defs =
    List.fold_left
      (fun n tu ->
        List.fold_left
          (fun n g -> match g with Cast.Gskipped _ -> n + 1 | _ -> n)
          n tu.Cast.tu_globals)
      0 sg.Supergraph.tunits
  in
  let reports = result.Engine.reports in
  let reports, suppressed =
    match history_db with
    | Some path ->
        let db = History.load path in
        History.suppress db reports
    | None -> (reports, 0)
  in
  let ranked =
    match rank_mode with
    | "stat" -> Rank.statistical_sort ~counters:result.Engine.counters reports
    | "none" -> reports
    | _ -> Rank.generic_sort reports
  in
  (match fmt with
  | "json" -> print_string (Json_out.reports_to_string ranked)
  | "strata" ->
      List.iter
        (fun (sev, reps) ->
          Format.printf "== %s (%d) ==@."
            (match sev with
            | Rank.Security -> "SECURITY"
            | Rank.Error_path -> "ERROR PATHS"
            | Rank.Normal -> "OTHER"
            | Rank.Minor -> "MINOR")
            (List.length reps);
          List.iteri (fun i r -> Format.printf "%3d. %a@." (i + 1) Report.pp r) reps)
        (Rank.stratified ranked)
  | _ -> List.iteri (fun i r -> Format.printf "%3d. %a@." (i + 1) Report.pp r) ranked);
  if suppressed > 0 then
    Format.printf "(%d report(s) suppressed by history database)@." suppressed;
  (match history_db with
  | Some path when update_history ->
      let db = History.load path in
      let db = List.fold_left History.add db result.Engine.reports in
      History.save path db;
      Format.printf "history database %s updated (%d entries)@." path (History.size db)
  | _ -> ());
  if result.Engine.counters <> [] && stats then begin
    Format.printf "@.rule statistics (z-ranked):@.";
    List.iter
      (fun (rule, z) ->
        let e, c =
          match
            List.find_opt (fun (r, _, _) -> String.equal r rule) result.Engine.counters
          with
          | Some (_, e, c) -> (e, c)
          | None -> (0, 0)
        in
        Format.printf "  z=%6.2f  e=%-4d c=%-4d %s@." z e c rule)
      (Zstat.rank_rules result.Engine.counters)
  end;
  if stats then begin
    let st = result.Engine.stats in
    if skipped_files + skipped_defs + List.length result.Engine.degraded > 0 then
      Format.printf
        "@.fault containment: %d file(s) skipped, %d definition(s) skipped, %d root(s) degraded@."
        skipped_files skipped_defs
        (List.length result.Engine.degraded);
    Format.printf
      "@.stats: %d blocks, %d nodes, %d paths, %d cache hits, %d calls followed, %d summary hits, %d pruned branches@."
      st.Engine.blocks_visited st.Engine.nodes_visited st.Engine.paths_explored
      st.Engine.cache_hits st.Engine.calls_followed st.Engine.summary_hits
      st.Engine.pruned_branches;
    Format.printf
      "interning: %d cache probes (%.1f%% hit), %d atoms, %d tuples interned, \
       %d expression ids%s@."
      st.Engine.cache_probes
      (if st.Engine.cache_probes = 0 then 0.
       else
         100.
         *. float_of_int st.Engine.cache_hits
         /. float_of_int st.Engine.cache_probes)
      st.Engine.intern_atoms st.Engine.intern_tuples
      (Exprid.n sg.Supergraph.ids)
      (if no_state_ids then " (state ids disabled)" else "");
    Format.printf
      "dispatch: %d match attempts, %d index hits, %d blocks skipped%s@."
      st.Engine.match_attempts st.Engine.index_hits st.Engine.blocks_skipped
      (if no_dispatch then " (index disabled)" else "");
    if effective_jobs jobs > 1 then
      Format.printf
        "scheduler: %d summary units published, %d replayed, %d recomputed, %d steals, %d waits@."
        st.Engine.shared_published st.Engine.shared_replayed
        st.Engine.shared_recomputed st.Engine.sched_steals
        st.Engine.sched_waits;
    let flat = sg.Supergraph.flat in
    Format.printf
      "memory: flat tables %.1f KiB (%d blocks, %d functions)%s, id table \
       %.1f KiB, analysis allocated %.1f MiB%s@."
      (float_of_int (Flat.table_bytes flat) /. 1024.)
      flat.Flat.n_blocks
      (Flat.n_functions flat)
      (if no_flat then " (flattening disabled)" else "")
      (float_of_int (Exprid.table_bytes sg.Supergraph.ids) /. 1024.)
      ((alloc1 -. alloc0) /. (1024. *. 1024.))
      (if effective_jobs jobs > 1 then " (main domain only)" else "");
    let total =
      List.length (Ctyping.fundefs sg.Supergraph.typing)
    in
    Format.printf "coverage: %d / %d functions traversed@."
      st.Engine.functions_traversed total;
    Format.printf
      "phases: preprocess+parse %.3fs, cfg+supergraph %.3fs, analysis %.3fs@."
      (t1 -. t0) (t2 -. t1) (t3 -. t2);
    match store with
    | Some s -> Format.printf "%a@." Summary_store.pp_stats s
    | None -> ()
  end;
  if ranked = [] && not (String.equal fmt "json") then
    Format.printf "no errors found@.";
  (* Exit protocol: 2 = usage error (handled above / by cmdliner);
     3 = the run was incomplete — files or definitions skipped, or roots
     degraded — unless --keep-going downgrades that; 1 = complete run
     that produced reports; 0 = complete and clean. *)
  let faults =
    skipped_files + skipped_defs
    + List.length result.Engine.degraded
    + List.length drift_roots
  in
  if faults > 0 && not keep_going then exit 3;
  if ranked <> [] then exit 1

let check_cmd =
  let files = Arg.(value & pos_all file [] & info [] ~docv:"FILE") in
  let checkers =
    Arg.(value & opt_all string [] & info [ "c"; "checker" ] ~docv:"NAME"
           ~doc:"Built-in checker to run (repeatable); defaults to 'free'.")
  in
  let metal_files =
    Arg.(value & opt_all file [] & info [ "m"; "metal" ] ~docv:"FILE.metal"
           ~doc:"Compile and run the metal extensions in $(docv) (repeatable).")
  in
  let rank =
    Arg.(value & opt string "generic" & info [ "rank" ] ~docv:"MODE"
           ~doc:"Report ranking: 'generic', 'stat' (z-statistic), or 'none'.")
  in
  let fmt =
    Arg.(value & opt string "text" & info [ "format" ] ~docv:"FMT"
           ~doc:"Output format: 'text', 'json', or 'strata' (severity classes).")
  in
  let history =
    Arg.(value & opt (some string) None & info [ "history" ] ~docv:"DB"
           ~doc:"Suppress reports recorded in the history database $(docv).")
  in
  let update =
    Arg.(value & flag & info [ "update-history" ]
           ~doc:"Record this run's reports into the history database.")
  in
  let no_cache = Arg.(value & flag & info [ "no-cache" ] ~doc:"Disable block caching.") in
  let no_prune =
    Arg.(value & flag & info [ "no-prune" ] ~doc:"Disable false-path pruning.")
  in
  let no_interproc =
    Arg.(value & flag & info [ "no-interproc" ] ~doc:"Do not follow function calls.")
  in
  let no_kill =
    Arg.(value & flag & info [ "no-kill" ] ~doc:"Disable kill-on-redefinition.")
  in
  let no_synonyms =
    Arg.(value & flag & info [ "no-synonyms" ] ~doc:"Disable synonym tracking.")
  in
  let no_dispatch =
    Arg.(value & flag & info [ "no-dispatch-index" ]
           ~doc:"Disable the compiled transition-dispatch index (head-constructor \
                 candidate lists and block skip sets) and scan every transition \
                 at every node. Reports are identical; only speed changes.")
  in
  let no_flat =
    Arg.(value & flag & info [ "no-flat" ]
           ~doc:"Serve block events from per-run boxed lists instead of the \
                 supergraph's flat tables (the A/B baseline for the flattened \
                 hot path). Reports are identical; only speed and allocation \
                 change.")
  in
  let no_state_ids =
    Arg.(value & flag & info [ "no-state-ids" ]
           ~doc:"Resolve tracked-object identity by rendering key strings on \
                 every probe instead of through the supergraph's hash-cons \
                 id table (the A/B baseline for integer-coded state). \
                 Reports are identical; only speed and allocation change.")
  in
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print engine statistics.") in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Trace the analysis (debug logs).")
  in
  let use_cpp =
    Arg.(value & flag & info [ "cpp" ] ~doc:"Preprocess C sources (mini cpp).")
  in
  let defines =
    Arg.(value & opt_all string [] & info [ "D" ] ~docv:"NAME[=VAL]"
           ~doc:"Predefine a macro (implies --cpp).")
  in
  let incdirs =
    Arg.(value & opt_all dir [] & info [ "I" ] ~docv:"DIR"
           ~doc:"Include search directory (implies --cpp).")
  in
  let jobs =
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Analyse callgraph roots on $(docv) worker domains (0 = all \
                 cores; default 1 = sequential). Reports are identical to a \
                 sequential run.")
  in
  let cache_dir =
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Persistent incremental cache: reuse parsed ASTs and per-root \
                 analysis results whose content fingerprints still match, \
                 recompute only what an edit invalidated. Reports are \
                 byte-identical to an uncached run.")
  in
  let no_cache_persist =
    Arg.(value & flag & info [ "no-cache-persist" ]
           ~doc:"Read from --cache-dir but do not write new entries back.")
  in
  let max_nodes =
    Arg.(value & opt int 0 & info [ "max-nodes-per-root" ] ~docv:"N"
           ~doc:"Analysis budget per callgraph root: abandon a root after \
                 $(docv) nodes visited plus state instances created, keep it \
                 out of every cache, and continue with the remaining roots \
                 (0 = unlimited). Reports from unaffected roots are \
                 byte-identical to an unbudgeted run.")
  in
  let timeout =
    Arg.(value & opt float 0. & info [ "timeout-per-root" ] ~docv:"SECONDS"
           ~doc:"Wall-clock deadline per callgraph root; a root past the \
                 deadline is abandoned like a --max-nodes-per-root blow-up. \
                 Inherently timing-dependent — prefer the node budget when \
                 reproducibility matters (0 = none).")
  in
  let keep_going =
    Arg.(value & flag & info [ "k"; "keep-going" ]
           ~doc:"Do not signal skipped or degraded units in the exit code: \
                 exit 1/0 on reports/clean even when parts of the input were \
                 abandoned (they are still warned about on stderr).")
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Run checkers over C files")
    Term.(
      const do_check $ files $ checkers $ metal_files $ rank $ fmt $ history $ update
      $ no_cache $ no_prune $ no_interproc $ no_kill $ no_synonyms $ no_dispatch
      $ no_flat $ no_state_ids $ stats $ verbose $ use_cpp $ defines $ incdirs $ jobs $ cache_dir
      $ no_cache_persist $ max_nodes $ timeout $ keep_going)

(* ------------------------------------------------------------------ *)
(* list-checkers / show-checker                                        *)
(* ------------------------------------------------------------------ *)

let do_list () =
  Format.printf "%-10s %5s  %s@." "NAME" "LOC" "DESCRIPTION";
  List.iter
    (fun e ->
      Format.printf "%-10s %5d  %s@." e.Registry.e_name (Registry.loc e)
        e.Registry.e_description)
    (Registry.all ())

let list_cmd =
  Cmd.v
    (Cmd.info "list-checkers" ~doc:"List built-in checkers and their metal size")
    Term.(const do_list $ const ())

let do_show name =
  match Registry.find name with
  | Some { Registry.e_source = Some src; _ } -> print_string src
  | Some { Registry.e_source = None; _ } ->
      Format.printf "(checker '%s' is written against the OCaml API)@." name
  | None ->
      Format.eprintf "unknown checker '%s'@." name;
      exit 2

let show_cmd =
  let checker_name = Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME") in
  Cmd.v
    (Cmd.info "show-checker" ~doc:"Print a checker's metal source")
    Term.(const do_show $ checker_name)

(* ------------------------------------------------------------------ *)
(* dump-cfg / dump-summaries                                           *)
(* ------------------------------------------------------------------ *)

let do_dump_cfg files fname =
  let sg = load_program files in
  match fname with
  | Some f -> (
      match Supergraph.cfg_of sg f with
      | Some cfg -> Format.printf "%a@." Cfg.pp cfg
      | None ->
          Format.eprintf "no function '%s'@." f;
          exit 2)
  | None ->
      Hashtbl.iter (fun _ cfg -> Format.printf "%a@.@." Cfg.pp cfg) sg.Supergraph.cfgs

let dump_cfg_cmd =
  let files = Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE") in
  let fname =
    Arg.(value & opt (some string) None & info [ "function" ] ~docv:"NAME")
  in
  Cmd.v
    (Cmd.info "dump-cfg" ~doc:"Print control-flow graphs")
    Term.(const do_dump_cfg $ files $ fname)

let print_summary_tables sg summaries =
  Hashtbl.iter
    (fun fname (bs, sfx) ->
      match Supergraph.cfg_of sg fname with
      | None -> ()
      | Some cfg ->
          Format.printf "@[<v>=== %s ===@," fname;
          Array.iteri
            (fun bid (block_sum : Summary.t) ->
              let b = Cfg.block cfg bid in
              Format.printf "@[<v 2>B%d%s:@," bid
                (if bid = cfg.Cfg.entry then " (entry)"
                 else if bid = cfg.Cfg.exit_ then " (exit)"
                 else "");
              Format.printf "block summary:  @[%a@]@," Summary.pp block_sum;
              Format.printf "suffix summary: @[%a@]@," Summary.pp sfx.(bid);
              List.iter (fun e -> Format.printf "%a@," Block.pp_elem e) b.Block.elems;
              Format.printf "%a@]@," Block.pp_terminator b.Block.term)
            bs;
          Format.printf "@]@.")
    summaries

(* Summaries are per-extension: print each extension's tables under its
   own banner (a single extension keeps the old flat layout). *)
let print_summaries sg per_ext =
  match per_ext with
  | [ (_, summaries) ] -> print_summary_tables sg summaries
  | _ ->
      List.iter
        (fun (ext_name, summaries) ->
          Format.printf "##### extension %s #####@.@." ext_name;
          print_summary_tables sg summaries)
        per_ext

let do_dump_summaries files checkers metal_files =
  let sg = load_program files in
  let exts = List.map fst (resolve_checkers checkers metal_files) in
  let _result, per_ext = Engine.run_with_summaries sg exts in
  print_summaries sg per_ext

let dump_summaries_cmd =
  let files = Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE") in
  let checker =
    Arg.(value & opt_all string [] & info [ "c"; "checker" ] ~docv:"NAME"
           ~doc:"Checker to run (repeatable); summaries are reported per \
                 extension.")
  in
  let metal_files =
    Arg.(value & opt_all file [] & info [ "m"; "metal" ] ~docv:"FILE.metal")
  in
  Cmd.v
    (Cmd.info "dump-summaries"
       ~doc:"Print block and suffix summaries after a run (Figure 5)")
    Term.(const do_dump_summaries $ files $ checker $ metal_files)

(* ------------------------------------------------------------------ *)
(* demo                                                                *)
(* ------------------------------------------------------------------ *)

let fig2_code =
  {|int contrived(int *p, int *w, int x) {
   int *q;

   if(x)
   {
      kfree(w);
      q = p;
      p = 0;
   }
   if(!x)
      return *w;
   return *q;
}
int contrived_caller(int *w, int x, int *p) {
   kfree(p);
   contrived(p, w, x);
   return *w;
}
|}

let do_demo what =
  match what with
  | "fig2" ->
      let tu = Cparse.parse_tunit ~file:"fig2.c" fig2_code in
      let sg = Supergraph.build [ tu ] in
      let result, summaries =
        Engine.run_with_summaries sg [ Free_checker.checker () ]
      in
      Format.printf "reports:@.";
      List.iter (fun r -> Format.printf "  %a@." Report.pp r) result.Engine.reports;
      Format.printf "@.supergraph summaries (cf. Figure 5):@.@.";
      print_summaries sg summaries
  | "fig3" ->
      Format.printf "Figure 3 lock checker:@.%s@." Lock_checker.source;
      let code =
        {|struct lk { int h; };
int good(struct lk *l) { if (trylock(l)) { unlock(l); } return 0; }
int leak(struct lk *l, int n) { lock(l); if (n < 0) { return n; } unlock(l); return n; }
int unheld(struct lk *l) { unlock(l); return 0; }
|}
      in
      let tu = Cparse.parse_tunit ~file:"fig3.c" code in
      let sg = Supergraph.build [ tu ] in
      let result = Engine.run sg [ Lock_checker.checker () ] in
      Format.printf "reports:@.";
      List.iter (fun r -> Format.printf "  %a@." Report.pp r) result.Engine.reports
  | other ->
      Format.eprintf "unknown demo '%s' (try: fig2, fig3)@." other;
      exit 2

let demo_cmd =
  let what = Arg.(value & pos 0 string "fig2" & info [] ~docv:"NAME") in
  Cmd.v
    (Cmd.info "demo" ~doc:"Reproduce the paper's running example")
    Term.(const do_demo $ what)

(* ------------------------------------------------------------------ *)
(* gen                                                                 *)
(* ------------------------------------------------------------------ *)

let do_gen seed funcs bug_rate out check =
  let g = Gen.generate ~seed ~n_funcs:funcs ~bug_rate in
  (match out with
  | Some path ->
      let oc = open_out path in
      output_string oc g.Gen.source;
      close_out oc;
      Format.printf "wrote %s (%d planted bugs)@." path (List.length g.Gen.planted)
  | None -> print_string g.Gen.source);
  List.iter
    (fun (p : Gen.planted) ->
      Format.printf "// planted: %s in %s (checker: %s)@."
        (Gen.bug_kind_to_string p.kind) p.in_function
        (Gen.checker_of_kind p.kind))
    g.Gen.planted;
  if check then begin
    let tu = Cparse.parse_tunit ~file:"gen.c" g.Gen.source in
    let sg = Supergraph.build [ tu ] in
    let exts = List.map (fun e -> e.Registry.e_make ()) (Registry.all ()) in
    let result = Engine.run sg exts in
    let found (p : Gen.planted) =
      List.exists
        (fun (r : Report.t) -> String.equal r.func p.in_function)
        result.Engine.reports
    in
    let detected = List.filter found g.Gen.planted in
    Format.printf "@.detected %d / %d planted bugs; %d reports total@."
      (List.length detected)
      (List.length g.Gen.planted)
      (List.length result.Engine.reports)
  end

let gen_cmd =
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N") in
  let funcs = Arg.(value & opt int 20 & info [ "funcs" ] ~docv:"N") in
  let rate = Arg.(value & opt float 0.3 & info [ "bug-rate" ] ~docv:"P") in
  let out = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE") in
  let check =
    Arg.(value & flag & info [ "check" ] ~doc:"Run all checkers on the generated code.")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a random workload with ground-truth bugs")
    Term.(const do_gen $ seed $ funcs $ rate $ out $ check)

(* ------------------------------------------------------------------ *)
(* emit (pass 1)                                                       *)
(* ------------------------------------------------------------------ *)

let do_emit files outdir use_cpp defines incdirs jobs cache_dir no_cache_persist =
  set_cpp ~use_cpp ~defines ~incdirs;
  set_ast_cache ~cache_dir ~persist:(not no_cache_persist);
  (* Pass-1 per-file emission is embarrassingly parallel: each task
     preprocesses, parses and writes one file; messages are printed in
     input order afterwards so the output is scheduling-independent.
     Output names come from emit_targets, which keeps the plain basename
     unless two inputs share it (a/util.c and b/util.c used to silently
     overwrite each other) and errors on residual collisions. *)
  let targets =
    try Array.of_list (Cast_io.emit_targets files)
    with Invalid_argument msg ->
      Format.eprintf "%s@." msg;
      exit 2
  in
  let outputs =
    Pool.run ~jobs:(effective_jobs jobs) (Array.length targets) (fun i ->
        let f, base = targets.(i) in
        let tu = load_tunit f in
        let out = Filename.concat outdir base in
        Cast_io.emit_file out tu;
        out)
  in
  Array.iteri
    (fun i out -> Format.printf "%s -> %s@." (fst targets.(i)) out)
    outputs

let emit_cmd =
  let files = Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE.c") in
  let outdir =
    Arg.(value & opt string "." & info [ "d"; "outdir" ] ~docv:"DIR"
           ~doc:"Directory for the emitted .mcast AST files.")
  in
  let use_cpp =
    Arg.(value & flag & info [ "cpp" ] ~doc:"Preprocess before parsing.")
  in
  let defines = Arg.(value & opt_all string [] & info [ "D" ] ~docv:"NAME[=VAL]") in
  let incdirs = Arg.(value & opt_all dir [] & info [ "I" ] ~docv:"DIR") in
  let jobs =
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Emit files on $(docv) worker domains (0 = all cores).")
  in
  let cache_dir =
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Reuse cached ASTs for unchanged inputs instead of re-parsing.")
  in
  let no_cache_persist =
    Arg.(value & flag & info [ "no-cache-persist" ]
           ~doc:"Read from --cache-dir but do not write new entries back.")
  in
  Cmd.v
    (Cmd.info "emit"
       ~doc:"Pass 1: (preprocess and) parse C files in isolation, emit ASTs (.mcast)")
    Term.(
      const do_emit $ files $ outdir $ use_cpp $ defines $ incdirs $ jobs $ cache_dir
      $ no_cache_persist)

(* ------------------------------------------------------------------ *)
(* cache (inspect the persistent incremental cache)                    *)
(* ------------------------------------------------------------------ *)

let human_bytes n =
  if n >= 1024 * 1024 then Printf.sprintf "%.1f MiB" (float_of_int n /. (1024. *. 1024.))
  else if n >= 1024 then Printf.sprintf "%.1f KiB" (float_of_int n /. 1024.)
  else Printf.sprintf "%d B" n

let do_cache_stats dir =
  if not (Sys.file_exists dir) then begin
    Format.eprintf "no cache directory %s@." dir;
    exit 2
  end;
  let d = Summary_store.disk_stats ~dir in
  Format.printf "store %s@." dir;
  (match d.Summary_store.d_version with
  | Some v when String.equal v Summary_store.store_version ->
      Format.printf "version %s@." v
  | Some v ->
      Format.printf "version %s (current build writes %s; old entries are orphaned)@."
        v Summary_store.store_version
  | None -> Format.printf "version (unstamped)@.");
  let line name (k : Summary_store.disk_kind) =
    Format.printf "%-9s %6d entries  %s@." name k.Summary_store.dk_files
      (human_bytes k.Summary_store.dk_bytes)
  in
  line "ast" d.Summary_store.d_ast;
  line "summary" d.Summary_store.d_sum;
  line "root" d.Summary_store.d_root;
  match Summary_store.load_last_run ~dir with
  | None -> Format.printf "last run: (none recorded)@."
  | Some kvs ->
      Format.printf "last run:@.";
      List.iter (fun (k, v) -> Format.printf "  %-18s %d@." k v) kvs

let do_cache_dump files =
  let failed = ref false in
  List.iter
    (fun path ->
      (* entry kind is recognised by magic: summary-store entries first,
         then binary AST cache objects, then emitted sexp .mcast files *)
      match Summary_store.dump_entry path with
      | Ok sx -> Format.printf "%s@." (Sexp.to_string sx)
      | Error store_err -> (
          match Cast_io.read_cached_file path with
          | Ok tu ->
              Format.printf "%s@." (Sexp.to_string (Cast_io.tunit_to_sexp tu))
          | Error _ -> (
              match Cast_io.read_file_result path with
              | Ok tu ->
                  Format.printf "%s@." (Sexp.to_string (Cast_io.tunit_to_sexp tu))
              | Error _ ->
                  Format.eprintf "%s: %s@." path store_err;
                  failed := true)))
    files;
  if !failed then exit 2

let cache_stats_cmd =
  let dir = Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR") in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Show a cache directory's store version, entry counts and sizes, \
             and the counters of the last cached run")
    Term.(const do_cache_stats $ dir)

let cache_dump_cmd =
  let files = Arg.(non_empty & pos_all file [] & info [] ~docv:"ENTRY") in
  Cmd.v
    (Cmd.info "dump"
       ~doc:"Decode binary cache entry files (function summaries, root \
             replay entries, AST objects) and print them as sexps")
    Term.(const do_cache_dump $ files)

let cache_cmd =
  Cmd.group
    (Cmd.info "cache" ~doc:"Inspect the persistent incremental cache")
    [ cache_stats_cmd; cache_dump_cmd ]

(* ------------------------------------------------------------------ *)
(* triage                                                              *)
(* ------------------------------------------------------------------ *)

let do_triage files checkers metal_files out apply_file history_db =
  let sg = load_program files in
  let exts = List.map fst (resolve_checkers checkers metal_files) in
  let result = Engine.run sg exts in
  let ranked = Rank.generic_sort result.Engine.reports in
  match apply_file with
  | None ->
      let path = Option.value out ~default:"triage.txt" in
      Triage.export_file path ranked;
      Format.printf "wrote %d report(s) to %s; mark each line R/F and re-run with --apply@."
        (List.length ranked) path
  | Some path ->
      let entries = Triage.import_file ~reports:ranked path in
      let db_path = Option.value history_db ~default:"xgcc-history.db" in
      let db, rule_stats = Triage.apply entries (History.load db_path) in
      History.save db_path db;
      let count v =
        List.length (List.filter (fun (e : Triage.entry) -> e.Triage.verdict = v) entries)
      in
      Format.printf "verdicts: %d real, %d false positive, %d undecided@."
        (count Triage.Real)
        (count Triage.False_positive)
        (count Triage.Undecided);
      Format.printf "history database %s now holds %d suppressed report(s)@." db_path
        (History.size db);
      if rule_stats <> [] then begin
        Format.printf "per-rule verdict counts (real, false):@.";
        List.iter
          (fun (rule, real, fp) -> Format.printf "  %-24s %d, %d@." rule real fp)
          rule_stats
      end

let triage_cmd =
  let files = Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE") in
  let checkers =
    Arg.(value & opt_all string [] & info [ "c"; "checker" ] ~docv:"NAME")
  in
  let metal_files =
    Arg.(value & opt_all file [] & info [ "m"; "metal" ] ~docv:"FILE.metal")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE")
  in
  let apply_file =
    Arg.(value & opt (some file) None & info [ "apply" ] ~docv:"FILE"
           ~doc:"Read verdicts back from a marked triage file.")
  in
  let history =
    Arg.(value & opt (some string) None & info [ "history" ] ~docv:"DB")
  in
  Cmd.v
    (Cmd.info "triage"
       ~doc:"Export ranked reports for inspection / fold verdicts into history")
    Term.(
      const do_triage $ files $ checkers $ metal_files $ out $ apply_file $ history)

(* ------------------------------------------------------------------ *)
(* serve (long-lived analysis daemon)                                  *)
(* ------------------------------------------------------------------ *)

(* Parse one in-memory source the way load_tunit would load it from disk.
   The daemon substitutes editor-buffer overlays for file contents, so
   the front end must never re-read the path itself. *)
let parse_source ~path ~source =
  if Filename.check_suffix path ".mcast" then
    match Cast_io.read_string source with
    | tu -> Ok tu
    | exception
        (( Sexp.Parse_error _ | Sexp.Decode_error _ | Failure _
         | Invalid_argument _ | End_of_file ) as e) ->
        Error (Printexc.to_string e)
  else
    match
      let src =
        match !cpp_conf with
        | None -> source
        | Some (defines, incdirs) ->
            Cpp.preprocess ~defines
              ~resolve_include:(resolve_include incdirs)
              ~file:path source
      in
      match !ast_cache_conf with
      | None -> Cparse.parse_tunit ~file:path src
      | Some (cache_dir, persist) -> (
          let fp = Cast_io.ast_fingerprint ~file:path ~source:src in
          match Cast_io.read_cached ~cache_dir fp with
          | Some tu ->
              Atomic.incr ast_hits;
              tu
          | None ->
              Atomic.incr ast_misses;
              let tu = Cparse.parse_tunit ~file:path src in
              if persist then Cast_io.write_cached ~cache_dir fp tu;
              tu)
    with
    | tu -> Ok tu
    | exception Clex.Lex_error (loc, msg) ->
        Error (Printf.sprintf "%s: lexical error: %s" (Srcloc.to_string loc) msg)
    | exception Cpp.Cpp_error (loc, msg) ->
        Error (Printf.sprintf "%s: preprocessor error: %s" (Srcloc.to_string loc) msg)
    | exception Sys_error msg -> Error msg

let do_serve files checkers metal_files rank verbose use_cpp defines incdirs
    jobs cache_dir no_cache_persist socket debounce no_cache no_prune
    no_interproc no_kill no_synonyms no_dispatch no_flat no_state_ids max_nodes
    timeout =
  setup_logs verbose;
  set_cpp ~use_cpp ~defines ~incdirs;
  set_ast_cache ~cache_dir ~persist:(not no_cache_persist);
  if files = [] then begin
    Format.eprintf "no input files@.";
    exit 2
  end;
  (* a client vanishing mid-reply must surface as EPIPE, not kill us *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let exts_src = resolve_checkers checkers metal_files in
  let options =
    options_of ~no_cache ~no_prune ~no_interproc ~no_kill ~no_synonyms
      ~no_dispatch ~no_flat ~no_state_ids ~max_nodes ~timeout
  in
  let ext_keys =
    Summary_store.ext_keys_of
      ~options_digest:(Engine.options_digest options)
      ~sources:(List.map snd exts_src)
  in
  (* Always memory-backed: warm re-checks never read the disk store.
     Without --cache-dir the incremental state is purely in-process —
     the store points at a path that is never created or written. *)
  let store =
    match cache_dir with
    | Some dir ->
        Summary_store.create ~dir ~persist:(not no_cache_persist) ~memory:true
          ~ext_keys ()
    | None ->
        let dir =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "xgcc-serve-mem-%d" (Unix.getpid ()))
        in
        Summary_store.create ~dir ~persist:false ~memory:true ~ext_keys ()
  in
  let cfg =
    {
      Server.c_files = files;
      c_parse = parse_source;
      c_exts = List.map fst exts_src;
      c_options = options;
      c_jobs = effective_jobs jobs;
      c_store = Some store;
      c_rank = rank;
    }
  in
  match Server.create cfg with
  | Error msg ->
      Format.eprintf "%s@." msg;
      exit 2
  | Ok server ->
      (* warm-up: load, parse, and analyse once, so the first request is
         answered from hot state *)
      let o = Server.check server in
      Format.eprintf
        "xgcc serve: %d file(s), %d checker(s), warm-up %.3fs (%d report(s)); %s@."
        (List.length files) (List.length exts_src) o.Server.o_recheck_s
        o.Server.o_reports
        (match socket with
        | Some p -> "listening on " ^ p
        | None -> "reading requests from stdin");
      (match socket with
      | Some path -> Server.serve_socket ~debounce server ~path
      | None -> Server.serve_stdio ~debounce server)

let serve_cmd =
  let files = Arg.(value & pos_all file [] & info [] ~docv:"FILE") in
  let checkers =
    Arg.(value & opt_all string [] & info [ "c"; "checker" ] ~docv:"NAME"
           ~doc:"Built-in checker to run (repeatable); defaults to 'free'.")
  in
  let metal_files =
    Arg.(value & opt_all file [] & info [ "m"; "metal" ] ~docv:"FILE.metal"
           ~doc:"Compile and run the metal extensions in $(docv) (repeatable).")
  in
  let rank =
    Arg.(value & opt string "generic" & info [ "rank" ] ~docv:"MODE"
           ~doc:"Report ranking inside each reply: 'generic', 'stat', or 'none'.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Trace the analysis (debug logs).")
  in
  let use_cpp =
    Arg.(value & flag & info [ "cpp" ] ~doc:"Preprocess C sources (mini cpp).")
  in
  let defines =
    Arg.(value & opt_all string [] & info [ "D" ] ~docv:"NAME[=VAL]"
           ~doc:"Predefine a macro (implies --cpp).")
  in
  let incdirs =
    Arg.(value & opt_all dir [] & info [ "I" ] ~docv:"DIR"
           ~doc:"Include search directory (implies --cpp).")
  in
  let jobs =
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Analyse callgraph roots on $(docv) worker domains (0 = all cores).")
  in
  let cache_dir =
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Warm the in-memory store from this persistent cache at \
                 startup and (unless --no-cache-persist) write results back, \
                 so a daemon restart or a concurrent batch check starts warm. \
                 Without it the incremental state lives only in the process.")
  in
  let no_cache_persist =
    Arg.(value & flag & info [ "no-cache-persist" ]
           ~doc:"Read from --cache-dir but do not write new entries back.")
  in
  let socket =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Listen for clients on a Unix socket at $(docv) instead of \
                 reading requests from stdin (one client served at a time).")
  in
  let debounce =
    Arg.(value & opt float 0.02 & info [ "debounce" ] ~docv:"SECONDS"
           ~doc:"How long a didChange waits for a follow-up request before \
                 committing to a re-check (edit-storm coalescing).")
  in
  let no_cache = Arg.(value & flag & info [ "no-cache" ] ~doc:"Disable block caching.") in
  let no_prune =
    Arg.(value & flag & info [ "no-prune" ] ~doc:"Disable false-path pruning.")
  in
  let no_interproc =
    Arg.(value & flag & info [ "no-interproc" ] ~doc:"Do not follow function calls.")
  in
  let no_kill =
    Arg.(value & flag & info [ "no-kill" ] ~doc:"Disable kill-on-redefinition.")
  in
  let no_synonyms =
    Arg.(value & flag & info [ "no-synonyms" ] ~doc:"Disable synonym tracking.")
  in
  let no_dispatch =
    Arg.(value & flag & info [ "no-dispatch-index" ]
           ~doc:"Disable the compiled transition-dispatch index.")
  in
  let no_flat =
    Arg.(value & flag & info [ "no-flat" ]
           ~doc:"Serve block events from boxed lists instead of flat tables.")
  in
  let no_state_ids =
    Arg.(value & flag & info [ "no-state-ids" ]
           ~doc:"Resolve tracked-object identity by string keys, not ids.")
  in
  let max_nodes =
    Arg.(value & opt int 0 & info [ "max-nodes-per-root" ] ~docv:"N"
           ~doc:"Analysis budget per callgraph root (0 = unlimited).")
  in
  let timeout =
    Arg.(value & opt float 0. & info [ "timeout-per-root" ] ~docv:"SECONDS"
           ~doc:"Wall-clock deadline per callgraph root (0 = none).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Long-lived analysis daemon: load once, re-check edits warm \
             (newline-delimited JSON requests on stdin or a Unix socket)")
    Term.(
      const do_serve $ files $ checkers $ metal_files $ rank $ verbose
      $ use_cpp $ defines $ incdirs $ jobs $ cache_dir $ no_cache_persist
      $ socket $ debounce $ no_cache $ no_prune $ no_interproc $ no_kill
      $ no_synonyms $ no_dispatch $ no_flat $ no_state_ids $ max_nodes
      $ timeout)

(* ------------------------------------------------------------------ *)

let main_cmd =
  let doc = "metacompilation: system-specific static analysis with metal extensions" in
  Cmd.group
    (Cmd.info "xgcc" ~version:"1.0.0" ~doc)
    [
      check_cmd; serve_cmd; list_cmd; show_cmd; dump_cfg_cmd; dump_summaries_cmd;
      demo_cmd; gen_cmd; emit_cmd; triage_cmd; cache_cmd;
    ]

(* The traversal allocates short-lived state clones at a rate that keeps the
   default 256Kw minor heap promoting live data; a 4Mw nursery lets most
   per-path state die young (measured in the gc_minor_heap bench line). An
   explicit s=... in OCAMLRUNPARAM/CAMLRUNPARAM still wins. *)
let () =
  let user_set_minor_heap v =
    match Sys.getenv_opt v with
    | None -> None
    | Some s ->
        if
          List.exists
            (fun p -> String.length p > 0 && p.[0] = 's')
            (String.split_on_char ',' s)
        then Some () else None
  in
  match (user_set_minor_heap "OCAMLRUNPARAM", user_set_minor_heap "CAMLRUNPARAM") with
  | None, None -> Gc.set { (Gc.get ()) with minor_heap_size = 4 * 1024 * 1024 }
  | _ -> ()

let () = exit (Cmd.eval main_cmd)
